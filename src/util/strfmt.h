// Minimal printf-style string formatting (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace pcxx {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strfmt(const char* fmt, ...);

/// vprintf-style formatting into a std::string.
std::string vstrfmt(const char* fmt, va_list ap);

/// Render a byte count as a human-readable quantity ("1.4 MB", "512 B").
std::string humanBytes(unsigned long long bytes);

/// Render seconds with adaptive precision ("283.00", "2.47", "0.39").
std::string humanSeconds(double seconds);

}  // namespace pcxx
