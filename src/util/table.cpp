#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pcxx {
namespace {

std::string pad(const std::string& s, size_t width) {
  std::string out = s;
  out.resize(std::max(width, s.size()), ' ');
  return out;
}

}  // namespace

void Table::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  // Compute per-column widths over header and all rows.
  std::vector<size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream os;
  os << title_ << "\n";
  auto renderRow = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << " " << pad(cell, widths[i]) << " |";
    }
    os << "\n";
  };
  auto renderRule = [&]() {
    os << "+";
    for (size_t width : widths) {
      os << std::string(width + 2, '-') << "+";
    }
    os << "\n";
  };

  renderRule();
  if (!header_.empty()) {
    renderRow(header_);
    renderRule();
  }
  for (const auto& row : rows_) renderRow(row);
  renderRule();
  if (!footnote_.empty()) os << footnote_ << "\n";
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace pcxx
