// ASCII table renderer used by the bench harness to print the paper's
// Tables 1-4 in the same row/column layout the paper reports.
#pragma once

#include <string>
#include <vector>

namespace pcxx {

/// A simple column-aligned ASCII table with a title and optional footnote.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  void setFootnote(std::string note) { footnote_ = std::move(note); }

  /// Render the table to a string (ends with '\n').
  std::string render() const;
  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string footnote_;
};

}  // namespace pcxx
