// The aio drain-deadline paths: a stuck flusher turns every bounded wait
// (drain, queue-full submit, pool acquire) into a typed IoError instead of
// a hang, a failed submit returns its staging buffer to the pool (no slot
// leak), and Machine::abort() wakes a pool wait in O(1) via the
// abort-waiter registry rather than the wait running out its deadline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "src/aio/aio.h"
#include "src/dstream/dstream.h"
#include "src/runtime/machine.h"
#include "src/runtime/rt_errors.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

#if PCXX_AIO_ENABLED

// A gate the pfs fault hook parks on: while closed, every hooked storage
// op blocks. Open it before any Writer/OStream is destroyed so the flusher
// can finish its in-flight job and join.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void openGate() {
    {
      std::lock_guard<std::mutex> lk(mu);
      open = true;
    }
    cv.notify_all();
  }
  void waitOpen() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return open; });
  }
};

pfs::FaultHook gateHook(Gate& gate) {
  return [&gate](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Write) gate.waitOpen();
  };
}

ByteBuffer filled(size_t n) { return ByteBuffer(n, Byte{0x5A}); }

TEST(AioDrainDeadline, StuckFlusherTurnsDrainIntoIoError) {
  pfs::Pfs fs = test::memFs();
  Gate gate;
  fs.setFaultHook(gateHook(gate));
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto file = fs.open(node, "stuck", pfs::OpenMode::Create);
    aio::Writer::Options wo;
    wo.queueDepth = 1;
    wo.drainDeadlineSeconds = 0.2;
    aio::Writer w(node, file, wo);
    ByteBuffer buf = w.acquireBuffer();
    buf = filled(64);
    w.submit(0, std::move(buf), 0.0);  // flusher takes it and parks on the gate
    try {
      w.drain();
      FAIL() << "expected the drain deadline to fire";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("drain exceeded its deadline"),
                std::string::npos);
    }
    gate.openGate();
    w.drain();  // flusher finishes the parked job; now the queue is empty
    EXPECT_FALSE(w.failed());
  });
}

TEST(AioDrainDeadline, QueueFullSubmitTimesOutWithoutLeakingItsBuffer) {
  pfs::Pfs fs = test::memFs();
  Gate gate;
  fs.setFaultHook(gateHook(gate));
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto file = fs.open(node, "full", pfs::OpenMode::Create);
    aio::Writer::Options wo;
    wo.queueDepth = 1;
    wo.poolBuffers = 3;
    wo.drainDeadlineSeconds = 0.2;
    aio::Writer w(node, file, wo);

    ByteBuffer a = w.acquireBuffer();
    a = filled(64);
    w.submit(0, std::move(a), 0.0);  // in flight, parked on the gate

    ByteBuffer b = w.acquireBuffer();
    b = filled(64);
    try {
      w.submit(64, std::move(b), 0.0);  // queue full: must time out
      FAIL() << "expected the queue-full deadline to fire";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("queue full past the drain"),
                std::string::npos);
    }

    gate.openGate();
    w.drain();
    // The timed-out submit released its buffer: all three pool slots are
    // acquirable again. A leaked slot would make the last acquire block
    // and throw.
    ByteBuffer b1 = w.acquireBuffer();
    ByteBuffer b2 = w.acquireBuffer();
    ByteBuffer b3 = w.acquireBuffer();
    w.releaseBuffer(std::move(b1));
    w.releaseBuffer(std::move(b2));
    w.releaseBuffer(std::move(b3));
  });
}

TEST(AioDrainDeadline, PoolExhaustionHitsTheAcquireDeadline) {
  aio::BufferPool pool(1);
  ByteBuffer only = pool.acquire(0.1, nullptr);
  EXPECT_THROW(pool.acquire(0.1, nullptr), IoError);
  pool.release(std::move(only));
  ByteBuffer again = pool.acquire(0.1, nullptr);  // slot is back
  pool.release(std::move(again));
}

// StreamOptions::aioDrainDeadlineSeconds reaches the stream's writer: with
// the flusher slowed past the deadline, close() surfaces the IoError on
// the node thread instead of hanging.
TEST(AioDrainDeadline, StreamDrainDeadlineFiresThroughStreamOptions) {
  pfs::Pfs fs = test::memFs();
  std::atomic<bool> slow{false};
  fs.setFaultHook([&slow](const pfs::OpContext& op) {
    if (slow.load() && op.kind == pfs::OpKind::Write) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });
  rt::Machine m(1);
  std::atomic<int> deadlineErrors{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(64, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    data.forEachLocal(
        [](double& v, std::int64_t g) { v = static_cast<double>(g); });
    ds::StreamOptions so;
    so.aioQueueDepth = 1;
    so.aioDrainDeadlineSeconds = 0.1;
    ds::OStream s(fs, &d, "slow", so);
    slow = true;  // header writes are done; stall the data flushes now
    try {
      s << data;
      s.write();
      s << data;
      s.write();
      s.close();
    } catch (const IoError&) {
      deadlineErrors.fetch_add(1);
    }
    slow = false;  // let in-flight jobs finish so the dtor's join returns
  });
  EXPECT_GE(deadlineErrors.load(), 1);
}

// The pool wait registers as an abort-waiter: a peer failing ~100 ms in
// wakes it immediately, not after the 30 s acquire deadline.
TEST(AioDrainDeadline, AbortWakesAPoolWaitInsteadOfItsDeadline) {
  rt::Machine m(2);
  std::atomic<bool> sawPeerAbort{false};
  const auto start = std::chrono::steady_clock::now();
  try {
    m.run([&](rt::Node& node) {
      if (node.id() == 0) {
        aio::BufferPool pool(1);
        ByteBuffer only = pool.acquire(0.1, nullptr);
        try {
          pool.acquire(30.0, &node.machine());  // blocks until the abort
        } catch (const rt::PeerAbortError& e) {
          sawPeerAbort = true;
          EXPECT_EQ(e.originNode, 1);
          pool.release(std::move(only));
          throw;
        }
        pool.release(std::move(only));
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        throw Error("boom");
      }
    });
    FAIL() << "expected the peer's exception to surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(sawPeerAbort.load());
  EXPECT_LT(elapsed, 5.0);  // O(1) wake, nowhere near the 30 s deadline
}

#endif  // PCXX_AIO_ENABLED

}  // namespace
