// Unit tests for the pcxx::aio pipeline wiring: depth-0 passthrough, the
// fixed-capacity staging pool (steady-state allocation zero), the
// helper-thread collective guard, and error surfacing at drain.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/pfs/fault.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr std::int64_t kElems = 12;

struct Fat {
  std::vector<double> v;
};
declareStreamInserter(Fat& e) { s << e.v; }
declareStreamExtractor(Fat& e) { s >> e.v; }

void fill(coll::Collection<double>& c, int rec) {
  c.forEachLocal([rec](double& v, std::int64_t g) {
    v = static_cast<double>(rec * 1000 + g);
  });
}

TEST(AioPipeline, DepthZeroIsTheSynchronousPath) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    fill(data, 0);

    ds::OStream s(fs, &d, "sync");  // default options: both depths 0
    EXPECT_FALSE(s.asyncActive());
    EXPECT_EQ(s.asyncBufferAllocations(), 0);
    s << data;
    s.write();
    s.close();

    coll::Collection<double> back(&d);
    ds::IStream is(fs, &d, "sync");
    EXPECT_FALSE(is.asyncActive());
    is.read();
    is >> back;
    back.forEachLocal([](double& v, std::int64_t g) {
      EXPECT_EQ(v, static_cast<double>(g));
    });
  });
}

#if PCXX_AIO_ENABLED

TEST(AioPipeline, SteadyStateAllocationIsZero) {
  // Writing many records through a depth-2 pipeline must never allocate
  // beyond the fixed staging pool (queueDepth + 2 buffers by default): the
  // pool recycles, it does not grow.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  std::atomic<int> maxAllocations{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);

    ds::StreamOptions so;
    so.aioQueueDepth = 2;
    ds::OStream s(fs, &d, "steady", so);
    ASSERT_TRUE(s.asyncActive());
    for (int rec = 0; rec < 24; ++rec) {
      fill(data, rec);
      s << data;
      s.write();
    }
    // Sample before close(): close tears the pipeline (and its pool) down.
    int seen = s.asyncBufferAllocations();
    s.close();
    EXPECT_GT(seen, 0);
    int prev = maxAllocations.load();
    while (seen > prev &&
           !maxAllocations.compare_exchange_weak(prev, seen)) {
    }
  });
  EXPECT_LE(maxAllocations.load(), 2 + 2);
}

TEST(AioPipeline, PoolBuffersOptionCapsTheStagingPool) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);

    ds::StreamOptions so;
    so.aioQueueDepth = 4;
    so.aioPoolBuffers = 2;  // tighter than queueDepth + 2
    ds::OStream s(fs, &d, "capped", so);
    for (int rec = 0; rec < 16; ++rec) {
      fill(data, rec);
      s << data;
      s.write();
    }
    const int seen = s.asyncBufferAllocations();
    s.close();
    EXPECT_LE(seen, 2);
    EXPECT_GT(seen, 0);
  });
}

TEST(AioPipeline, BackgroundFlushFailureSurfacesAsATypedError) {
  // Crash every data-region write (the header and size table of this small
  // record live in the first bytes of the file; the element data starts
  // well past the threshold thanks to a fat payload). With write-behind
  // enabled those are exactly the flusher's ops, so the failure is captured
  // on the helper thread and must resurface as a typed Error on the node
  // thread — at the next write() or at close(), never silently.
  pfs::Pfs fs = test::memFs();
  fs.setFaultHook([](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Write && op.offset >= 1u << 16) {
      throw pfs::CrashInjected("background flush");
    }
  });
  rt::Machine m(2);
  bool caught = false;
  try {
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(kElems, &P, coll::DistKind::Block);
      // ~12 KiB per element: the record's data section dwarfs the 64 KiB
      // fault threshold, so at least one flushed chunk lands past it.
      coll::Collection<Fat> data(&d);
      data.forEachLocal([](Fat& e, std::int64_t g) {
        e.v.assign(1536, static_cast<double>(g));
      });
      ds::StreamOptions so;
      so.aioQueueDepth = 2;
      ds::OStream s(fs, &d, "doomed", so);
      for (int rec = 0; rec < 6; ++rec) {
        s << data;
        s.write();
      }
      s.close();
    });
  } catch (const Error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

#endif  // PCXX_AIO_ENABLED

TEST(AioPipeline, HelperThreadsMayNotEnterCollectives) {
  // aio helper threads (and any other non-node thread) must be rejected by
  // the runtime's collectives with a typed UsageError instead of hanging
  // the barrier protocol.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  std::atomic<int> rejected{0};
  m.run([&](rt::Node& node) {
    std::thread helper([&] {
      try {
        node.barrier();
      } catch (const UsageError&) {
        rejected.fetch_add(1);
      }
    });
    helper.join();
    node.barrier();  // the node thread itself is still welcome
  });
  EXPECT_EQ(rejected.load(), 2);
}

}  // namespace
