// Concurrency stress for the pcxx::aio pipelines, meant to run under
// ThreadSanitizer (the CI tsan leg builds every test with
// -fsanitize=thread): producer-vs-flusher contention at depth 1 and 8,
// drain-at-close races, prefetch chains torn down mid-flight, and a
// FaultPlan crash landing inside a background flush. The pass criterion is
// simply: correct data, typed errors, no deadlock, no TSan report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "src/dstream/dstream.h"
#include "src/pfs/fault.h"
#include "src/pfs/fault_plan.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr std::int64_t kElems = 24;

void fill(coll::Collection<std::int64_t>& c, int rec) {
  c.forEachLocal([rec](std::int64_t& v, std::int64_t g) {
    v = static_cast<std::int64_t>(rec) * 100000 + g;
  });
}

/// Write `records` records at `queueDepth`, read them back at
/// `prefetchDepth`, verify. The tight write loop keeps the producer ahead
/// of the flusher, so the bounded queue and staging pool see real
/// contention (blocking acquire/release on both sides).
void hammer(int nprocs, int queueDepth, int prefetchDepth, int records) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Cyclic);
    coll::Collection<std::int64_t> data(&d);

    ds::StreamOptions so;
    so.aioQueueDepth = queueDepth;
    {
      ds::OStream s(fs, &d, "hammer", so);
      for (int rec = 0; rec < records; ++rec) {
        fill(data, rec);
        s << data;
        s.write();
      }
      s.close();
    }

    coll::Collection<std::int64_t> back(&d);
    ds::StreamOptions ro;
    ro.aioPrefetchDepth = prefetchDepth;
    ds::IStream is(fs, &d, "hammer", ro);
    for (int rec = 0; rec < records; ++rec) {
      is.read();
      is >> back;
      back.forEachLocal([&](std::int64_t& v, std::int64_t g) {
        if (v != static_cast<std::int64_t>(rec) * 100000 + g) {
          bad.fetch_add(1);
        }
      });
    }
    is.close();
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(AioStress, ProducerVsFlusherDepth1) { hammer(2, 1, 1, 40); }

TEST(AioStress, ProducerVsFlusherDepth8) { hammer(2, 8, 8, 40); }

TEST(AioStress, ManyNodesModestDepth) { hammer(4, 2, 2, 16); }

TEST(AioStress, DrainAtCloseRaces) {
  // Close (and destroy) streams immediately after submitting work, over
  // and over: the drain handshake races the flusher finishing its last
  // job, and the prefetch chain is torn down while a fetch is in flight.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<std::int64_t> data(&d);
    for (int round = 0; round < 12; ++round) {
      ds::StreamOptions so;
      so.aioQueueDepth = 1 + round % 4;
      {
        ds::OStream s(fs, &d, "race", so);
        fill(data, round);
        s << data;
        s.write();
        if (round % 2 == 0) {
          s.close();  // explicit drain...
        }
      }  // ...or destructor drain, alternating

      // Open a prefetching reader and abandon it after one record (or
      // before any, every third round) so the chain dies mid-flight.
      ds::StreamOptions ro;
      ro.aioPrefetchDepth = 1 + round % 3;
      ds::IStream is(fs, &d, "race", ro);
      if (round % 3 != 0) {
        coll::Collection<std::int64_t> back(&d);
        is.read();
        is >> back;
      }
    }
  });
}

#if PCXX_AIO_ENABLED

TEST(AioStress, CrashMidBackgroundFlushSurfacesAndUnwinds) {
  // Crash injected into data-region writes only (offsets past the header
  // area): with write-behind on, these run on the flusher thread. The
  // sticky error must resurface on the node thread as a typed Error — from
  // write() or close() — and the whole machine must unwind without
  // deadlocking, repeatedly.
  for (int round = 0; round < 6; ++round) {
    pfs::Pfs fs = test::memFs();
    std::atomic<std::uint64_t> dataWrites{0};
    const std::uint64_t crashOn = 1 + static_cast<std::uint64_t>(round) % 3;
    fs.setFaultHook([&](const pfs::OpContext& op) {
      if (op.kind == pfs::OpKind::Write && op.offset >= 1u << 15) {
        if (dataWrites.fetch_add(1) + 1 == crashOn) {
          throw pfs::CrashInjected("mid background flush");
        }
      }
    });
    rt::Machine m(2);
    bool caught = false;
    try {
      m.run([&](rt::Node&) {
        coll::Processors P;
        coll::Distribution d(kElems, &P, coll::DistKind::Block);
        coll::Collection<std::int64_t> data(&d);
        // Fat payload via many records so data offsets pass the threshold.
        ds::StreamOptions so;
        so.aioQueueDepth = 2;
        ds::OStream s(fs, &d, "crashy", so);
        for (int rec = 0; rec < 400; ++rec) {
          fill(data, rec);
          s << data;
          s.write();
        }
        s.close();
      });
    } catch (const Error&) {
      caught = true;
    }
    EXPECT_TRUE(caught) << "round " << round;
  }
}

TEST(AioStress, TransientFaultsAreRetriedInTheBackground) {
  // A FaultPlan that fails 10% of ops transiently: the background retry
  // policy must absorb them (same policy as the synchronous path) and the
  // round trip must still verify.
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 8;  // the default (1) would fail permanently
  fs.setRetryPolicy(rp);
  pfs::FaultPlan plan(/*seed=*/7);
  plan.failWithProbability(0.1);
  fs.setFaultHook(plan.hook());
  rt::Machine m(2);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<std::int64_t> data(&d);
    ds::StreamOptions so;
    so.aioQueueDepth = 3;
    {
      ds::OStream s(fs, &d, "flaky", so);
      for (int rec = 0; rec < 10; ++rec) {
        fill(data, rec);
        s << data;
        s.write();
      }
      s.close();
    }
    coll::Collection<std::int64_t> back(&d);
    ds::StreamOptions ro;
    ro.aioPrefetchDepth = 2;
    ds::IStream is(fs, &d, "flaky", ro);
    for (int rec = 0; rec < 10; ++rec) {
      is.read();
      is >> back;
      back.forEachLocal([&](std::int64_t& v, std::int64_t g) {
        if (v != static_cast<std::int64_t>(rec) * 100000 + g) {
          bad.fetch_add(1);
        }
      });
    }
    is.close();
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(plan.firedCount(), 0u);
}

#endif  // PCXX_AIO_ENABLED

}  // namespace
