// Golden byte-identity tests for the overlap pipeline: a file written with
// write-behind enabled (any queue depth) must be byte-for-byte identical to
// the one the synchronous path writes — the pipeline may only change WHEN
// bytes move, never WHERE — and reading it back through read-ahead must not
// disturb it. The same must hold with an observer attached (metrics +
// trace), since observation must never perturb the data path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/pfs/parallel_file.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kNodes = 3;
constexpr std::int64_t kElems = 17;
constexpr int kRecords = 5;

struct Particle {
  int n = 0;
  double* data = nullptr;
  ~Particle() { delete[] data; }
  Particle() = default;
  Particle(const Particle&) = delete;
  Particle& operator=(const Particle&) = delete;
};

declareStreamInserter(Particle& e) {
  s << e.n;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(Particle& e) {
  int n = 0;
  s >> n;
  if (n != e.n) {
    delete[] e.data;
    e.data = n > 0 ? new double[static_cast<size_t>(n)] : nullptr;
    e.n = n;
  }
  s >> pcxx::ds::array(e.data, e.n);
}

void fill(coll::Collection<Particle>& c, int rec) {
  c.forEachLocal([rec](Particle& e, std::int64_t g) {
    e.n = static_cast<int>((g * 5 + rec * 3 + 1) % 11);
    delete[] e.data;
    e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
    for (int k = 0; k < e.n; ++k) {
      e.data[k] = static_cast<double>(rec * 100000 + g * 100 + k);
    }
  });
}

struct WriteCfg {
  int queueDepth = 0;
  bool checksum = false;
  int headerPolicy = 0;  // StreamOptions::HeaderPolicy
  bool observe = false;  // attach metrics + trace during the write
};

/// Write kRecords records of the fixed workload under `cfg`, then return
/// the finished file's bytes.
ByteBuffer writeAndSnapshot(const WriteCfg& cfg) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(kNodes);

#if PCXX_OBS_ENABLED
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::TraceSession> trace;
  if (cfg.observe) {
    registry = std::make_unique<obs::MetricsRegistry>(kNodes);
    trace = std::make_unique<obs::TraceSession>(kNodes);
    obs::Observer observer;
    observer.metrics = registry.get();
    observer.trace = trace.get();
    observer.timeMode = obs::Observer::TimeMode::Wall;  // no perf model here
    m.attachObserver(observer);
  }
#endif

  ByteBuffer bytes;
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Cyclic);
    coll::Collection<Particle> data(&d);

    ds::StreamOptions so;
    so.aioQueueDepth = cfg.queueDepth;
    so.checksumData = cfg.checksum;
    so.headerPolicy =
        static_cast<ds::StreamOptions::HeaderPolicy>(cfg.headerPolicy);
    ds::OStream s(fs, &d, "golden", so);
    EXPECT_EQ(s.asyncActive(), cfg.queueDepth > 0 && PCXX_AIO_ENABLED != 0);
    for (int rec = 0; rec < kRecords; ++rec) {
      fill(data, rec);
      s << data;
      s.write();
    }
    s.close();

    auto f = fs.open(node, "golden", pfs::OpenMode::Read);
    if (node.id() == 0) {
      bytes.resize(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, bytes) != bytes.size()) {
        throw IoError("byte_identity: short read of the finished file");
      }
    }
    node.barrier();
  });
  return bytes;
}

/// Read the golden file back through a prefetching stream and assert the
/// contents round-trip; returns the file bytes afterwards (reads must not
/// disturb the file).
ByteBuffer readBackAndSnapshot(pfs::Pfs& fs, int prefetchDepth) {
  rt::Machine m(kNodes);
  ByteBuffer bytes;
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Cyclic);
    coll::Collection<Particle> back(&d);
    ds::StreamOptions ro;
    ro.aioPrefetchDepth = prefetchDepth;
    ds::IStream is(fs, &d, "golden", ro);
    for (int rec = 0; rec < kRecords; ++rec) {
      is.read();
      is >> back;
      back.forEachLocal([&](Particle& e, std::int64_t g) {
        if (e.n != static_cast<int>((g * 5 + rec * 3 + 1) % 11)) {
          bad.fetch_add(1);
          return;
        }
        for (int k = 0; k < e.n; ++k) {
          if (e.data[k] != static_cast<double>(rec * 100000 + g * 100 + k)) {
            bad.fetch_add(1);
          }
        }
      });
    }
    is.close();
    auto f = fs.open(node, "golden", pfs::OpenMode::Read);
    if (node.id() == 0) {
      bytes.resize(static_cast<size_t>(f->size()));
      f->readAt(node, 0, bytes);
    }
    node.barrier();
  });
  EXPECT_EQ(bad.load(), 0);
  return bytes;
}

TEST(ByteIdentity, AsyncFilesMatchSyncAtEveryDepth) {
  const ByteBuffer golden = writeAndSnapshot(WriteCfg{});
  ASSERT_FALSE(golden.empty());
  for (const int depth : {1, 2, 4, 8}) {
    WriteCfg cfg;
    cfg.queueDepth = depth;
    EXPECT_EQ(writeAndSnapshot(cfg), golden) << "queue depth " << depth;
  }
}

TEST(ByteIdentity, ChecksummedRecordsAlsoMatch) {
  WriteCfg sync;
  sync.checksum = true;
  const ByteBuffer golden = writeAndSnapshot(sync);
  for (const int depth : {1, 4}) {
    WriteCfg cfg;
    cfg.checksum = true;
    cfg.queueDepth = depth;
    EXPECT_EQ(writeAndSnapshot(cfg), golden) << "queue depth " << depth;
  }
}

TEST(ByteIdentity, BothHeaderModesMatchTheirSyncCounterpart) {
  // 1 = ForceGathered, 2 = ForceParallel.
  for (const int policy : {1, 2}) {
    WriteCfg sync;
    sync.headerPolicy = policy;
    const ByteBuffer golden = writeAndSnapshot(sync);
    WriteCfg cfg;
    cfg.headerPolicy = policy;
    cfg.queueDepth = 3;
    EXPECT_EQ(writeAndSnapshot(cfg), golden) << "header policy " << policy;
  }
}

#if PCXX_OBS_ENABLED
TEST(ByteIdentity, ObserverDoesNotPerturbTheBytes) {
  const ByteBuffer golden = writeAndSnapshot(WriteCfg{});
  WriteCfg cfg;
  cfg.queueDepth = 4;
  cfg.observe = true;
  EXPECT_EQ(writeAndSnapshot(cfg), golden);
}
#endif

TEST(ByteIdentity, PrefetchReadsLeaveTheFileUntouchedAndRoundTrip) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(kNodes);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Cyclic);
    coll::Collection<Particle> data(&d);
    ds::StreamOptions so;
    so.aioQueueDepth = 2;
    ds::OStream s(fs, &d, "golden", so);
    for (int rec = 0; rec < kRecords; ++rec) {
      fill(data, rec);
      s << data;
      s.write();
    }
    s.close();
  });
  const ByteBuffer before = readBackAndSnapshot(fs, /*prefetchDepth=*/0);
  for (const int depth : {1, 2, 4}) {
    EXPECT_EQ(readBackAndSnapshot(fs, depth), before)
        << "prefetch depth " << depth;
  }
}

}  // namespace
