// rt::ChaosPlan unit tests: the spec grammar, per-shape injection semantics
// on a live Machine (drop, delay, dup, reorder, crash, skew), schedule
// determinism, and the golden guarantee that an *empty* plan perturbs
// nothing — the bytes a chaos-enabled machine writes are identical to the
// bytes a plain machine writes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/runtime/chaos_plan.h"
#include "src/runtime/machine.h"
#include "src/runtime/rt_errors.h"
#include "src/util/crc32.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;
using namespace pcxx::rt;

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(ChaosPlanSpec, ParsesEveryShape) {
  const ChaosPlan plan = ChaosPlan::parse(
      "drop@1; drop%0.25; delay@0:0.5; delay%0.1:0.25; dup@3; reorder@0; "
      "crash-node@2:op=7; skew@1:0.25; skew%0.5:0.125");
  EXPECT_EQ(plan.clauseCount(), 9u);
}

TEST(ChaosPlanSpec, ParsesNodeRestriction) {
  EXPECT_EQ(ChaosPlan::parse("n2:drop@0").clauseCount(), 1u);
  EXPECT_EQ(ChaosPlan::parse("n0:drop%0.5;n1:delay@2:0.125").clauseCount(),
            2u);
}

TEST(ChaosPlanSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(ChaosPlan::parse(""), UsageError);
  EXPECT_THROW(ChaosPlan::parse("explode@1"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("drop@"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("drop@x"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("drop%1.5"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("drop%-0.1"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("delay@1"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("crash-node@2"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("crash-node@2:7"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("n9"), UsageError);
  EXPECT_THROW(ChaosPlan::parse("skew@1:-1"), UsageError);
}

TEST(ChaosPlanSpec, ProbabilisticVerdictsReplayAcrossIdenticalPlans) {
  const auto sample = [](std::uint64_t seed) {
    ChaosPlan plan(seed);
    plan.dropWithProbability(0.3);
    plan.delayWithProbability(0.3, 0.5);
    plan.bind(4);
    std::string pattern;
    for (int node = 0; node < 4; ++node) {
      for (int i = 0; i < 64; ++i) {
        const ChaosPlan::SendVerdict v = plan.onSend(node);
        pattern += v.drop ? 'd' : (v.delaySeconds > 0 ? 'D' : '.');
      }
    }
    return pattern;
  };
  const std::string a = sample(42);
  EXPECT_EQ(a, sample(42));       // same seed, same schedule
  EXPECT_NE(a, sample(43));       // a different seed actually reseeds
  EXPECT_NE(a.find('d'), std::string::npos);
  EXPECT_NE(a.find('D'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(ChaosPlanSpec, BindResetsTheSchedule) {
  ChaosPlan plan(7);
  plan.dropAtSend(0);
  plan.bind(2);
  EXPECT_TRUE(plan.onSend(0).drop);
  EXPECT_FALSE(plan.onSend(0).drop);
  plan.bind(2);  // what Machine::run does at region entry
  EXPECT_TRUE(plan.onSend(0).drop);
}

// ---------------------------------------------------------------------------
// Injection on a live machine
// ---------------------------------------------------------------------------

TEST(ChaosPlanInject, DroppedSendTurnsIntoRecvTimeout) {
  ChaosPlan plan;
  plan.dropAtSend(0).onlyNode(0);
  MachineOptions opts;
  opts.recvDeadlineSeconds = 0.2;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  EXPECT_THROW(m.run([](Node& node) {
                 if (node.id() == 0) {
                   node.sendValue(1, /*tag=*/1, 7);
                 } else {
                   node.recvValue<int>(0, 1);
                 }
               }),
               RecvTimeoutError);
  EXPECT_EQ(plan.firedCount(), 1u);
}

TEST(ChaosPlanInject, DelayChargesTheVirtualArrivalTime) {
  ChaosPlan plan;
  plan.delayAtSend(0, 0.5).onlyNode(0);
  MachineOptions opts;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, /*tag=*/1, 7);
    } else {
      EXPECT_EQ(node.recvValue<int>(0, 1), 7);
      // recv syncs the receiver's clock to the delayed arrival time.
      EXPECT_GE(node.clock().now(), 0.5);
    }
  });
}

TEST(ChaosPlanInject, DuplicatedSendIsDeliveredTwice) {
  ChaosPlan plan;
  plan.dupAtSend(0).onlyNode(0);
  MachineOptions opts;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, /*tag=*/1, 7);
    } else {
      EXPECT_EQ(node.recvValue<int>(0, 1), 7);
      EXPECT_EQ(node.recvValue<int>(0, 1), 7);  // the duplicate
      EXPECT_FALSE(node.probe(0, 1));
    }
  });
}

TEST(ChaosPlanInject, ReorderedSendIsOvertakenByTheNextOne) {
  ChaosPlan plan;
  plan.reorderAtSend(0).onlyNode(0);
  MachineOptions opts;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, /*tag=*/1, 100);  // deferred by the plan
      node.sendValue(1, /*tag=*/1, 200);  // overtakes it
    } else {
      EXPECT_EQ(node.recvValue<int>(0, 1), 200);
      EXPECT_EQ(node.recvValue<int>(0, 1), 100);
    }
  });
}

TEST(ChaosPlanInject, DeferredSendStillArrivesWhenTheNodeGoesQuiet) {
  // A reordered send with no subsequent send must flush when the node's
  // SPMD function returns, not vanish.
  ChaosPlan plan;
  plan.reorderAtSend(0).onlyNode(0);
  MachineOptions opts;
  opts.chaos = &plan;
  opts.recvDeadlineSeconds = 5.0;  // bounded, so a regression fails fast
  Machine m(2, CommModel{}, opts);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, /*tag=*/1, 7);
    } else {
      EXPECT_EQ(node.recvValue<int>(0, 1), 7);
    }
  });
}

TEST(ChaosPlanInject, CrashClauseThrowsOnTheVictimAndUnwindsPeers) {
  ChaosPlan plan;
  plan.crashNodeAtOp(1, 0);  // node 1 dies at its first runtime op
  MachineOptions opts;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  std::atomic<bool> peerSawAbort{false};
  std::atomic<int> abortOrigin{-1};
  try {
    m.run([&](Node& node) {
      if (node.id() == 1) {
        node.sendValue(0, /*tag=*/1, 7);  // op 0: crashes before sending
      } else {
        try {
          node.recvValue<int>(1, 1);
        } catch (const PeerAbortError& e) {
          peerSawAbort = true;
          abortOrigin = e.originNode;
          throw;
        }
      }
    });
    FAIL() << "expected ChaosCrashError";
  } catch (const ChaosCrashError& e) {
    EXPECT_EQ(e.node, 1);
    EXPECT_EQ(e.op, 0u);
  }
  EXPECT_TRUE(peerSawAbort.load());
  EXPECT_EQ(abortOrigin.load(), 1);
}

TEST(ChaosPlanInject, SkewAdvancesTheCollectiveClock) {
  ChaosPlan plan;
  plan.skewAtCollective(0, 0.25).onlyNode(1);
  MachineOptions opts;
  opts.chaos = &plan;
  Machine m(2, CommModel{}, opts);
  m.run([](Node& node) {
    node.barrier();
    // The straggler's skew is absorbed by the rendezvous: every clock
    // reaches at least the injected 0.25 s.
    EXPECT_GE(node.clock().now(), 0.25);
  });
  EXPECT_EQ(plan.firedCount(), 1u);
}

// ---------------------------------------------------------------------------
// Empty-plan byte identity (golden CRC)
// ---------------------------------------------------------------------------

ByteBuffer writeGolden(ChaosPlan* chaos) {
  pfs::Pfs fs = test::memFs();
  MachineOptions opts;
  opts.chaos = chaos;
  Machine m(3, CommModel{}, opts);
  ByteBuffer bytes;
  m.run([&](Node& node) {
    coll::Processors P;
    coll::Distribution d(17, &P, coll::DistKind::Cyclic);
    coll::Collection<double> data(&d);
    ds::StreamOptions so;
    so.checksumData = true;
    ds::OStream s(fs, &d, "golden", so);
    for (int rec = 0; rec < 4; ++rec) {
      data.forEachLocal([rec](double& v, std::int64_t g) {
        v = static_cast<double>(rec * 1000 + g);
      });
      s << data;
      s.write();
    }
    s.close();
    auto f = fs.open(node, "golden", pfs::OpenMode::Read);
    if (node.id() == 0) {
      bytes.resize(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, bytes) != bytes.size()) {
        throw IoError("chaos golden: short read of the finished file");
      }
    }
    node.barrier();
  });
  return bytes;
}

TEST(ChaosPlanGolden, EmptyPlanLeavesStreamBytesIdentical) {
  const ByteBuffer plain = writeGolden(nullptr);
  ChaosPlan empty(12345);  // installed but clause-free: must be a no-op
  const ByteBuffer chaotic = writeGolden(&empty);
  ASSERT_FALSE(plain.empty());
  ASSERT_EQ(plain.size(), chaotic.size());
  EXPECT_EQ(crc32(plain), crc32(chaotic));
  EXPECT_EQ(plain, chaotic);
  EXPECT_EQ(empty.firedCount(), 0u);
}

}  // namespace
