// Chaos soak: a seeded sweep of rt::ChaosPlan × pfs::FaultPlan combinations
// over a p2p ring, a stream write, and a CheckpointManager save/restore.
//
// Per seed the sweep asserts the three robustness invariants the chaos
// layer promises:
//
//   * no-hang — every outcome is either success or a typed pcxx::Error;
//     the armed watchdog (short deadlines) bounds every wait, so a seed
//     that would deadlock fails fast instead of stalling ctest.
//   * salvage-recoverable — whatever bytes the aborted run left behind,
//     ds::scanFile() walks them without crashing and reports a valid
//     prefix no larger than the file.
//   * reusable — after an aborted region the same Machine runs a clean
//     region to completion with correct results.
//
// Leak-freedom comes from running the sweep under asan (the `chaos` CI
// leg). A failing seed reproduces alone via the env var printed in the
// failure message: PCXX_CHAOS_SEED=<n> ./chaos_soak_test
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/pfs/fault_plan.h"
#include "src/runtime/chaos_plan.h"
#include "src/runtime/machine.h"
#include "src/runtime/rt_errors.h"
#include "src/util/rng.h"
#include "src/util/strfmt.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kSweepSeeds = 220;
constexpr double kDeadline = 0.15;  // short: a stalled seed costs ~150 ms

/// Everything one seed decides, derived deterministically.
struct SoakCase {
  int nprocs = 2;
  std::int64_t elements = 8;
  int records = 1;
  int queueDepth = 0;
  int ringRounds = 2;
  bool withFaultPlan = false;
  std::uint64_t faultOp = 0;
  std::uint64_t faultDurable = 0;
  std::string chaosSpec;
};

std::string drawClause(Rng& rng, int nprocs) {
  switch (rng.uniformInt(0, 6)) {
    case 0:
      return strfmt("drop@%d", static_cast<int>(rng.uniformInt(0, 3)));
    case 1:
      return strfmt("delay@%d:0.0%d", static_cast<int>(rng.uniformInt(0, 3)),
                    static_cast<int>(rng.uniformInt(1, 5)));
    case 2:
      return strfmt("dup@%d", static_cast<int>(rng.uniformInt(0, 3)));
    case 3:
      return strfmt("reorder@%d", static_cast<int>(rng.uniformInt(0, 3)));
    case 4:
      return strfmt("crash-node@%d:op=%d",
                    static_cast<int>(rng.uniformInt(0, nprocs - 1)),
                    static_cast<int>(rng.uniformInt(0, 30)));
    case 5:
      return strfmt("skew@%d:0.0%d", static_cast<int>(rng.uniformInt(0, 4)),
                    static_cast<int>(rng.uniformInt(1, 9)));
    default:
      return "drop%0.05";
  }
}

SoakCase deriveCase(int seed) {
  Rng rng(0xC4A05ull * 2654435761ull + static_cast<std::uint64_t>(seed));
  SoakCase c;
  c.nprocs = static_cast<int>(rng.uniformInt(2, 4));
  c.elements = rng.uniformInt(8, 24);
  c.records = static_cast<int>(rng.uniformInt(1, 3));
  const int depths[] = {0, 0, 1, 2};
  c.queueDepth = depths[rng.uniformInt(0, 3)];
  c.ringRounds = static_cast<int>(rng.uniformInt(1, 2));
  const int clauses = static_cast<int>(rng.uniformInt(1, 3));
  for (int i = 0; i < clauses; ++i) {
    if (!c.chaosSpec.empty()) c.chaosSpec += ";";
    c.chaosSpec += drawClause(rng, c.nprocs);
  }
  c.withFaultPlan = rng.uniformInt(0, 9) < 4;
  c.faultOp = rng.uniformInt(2, 40);
  c.faultDurable = rng.uniformInt(0, 1) == 1 ? 4 : 0;
  return c;
}

/// The workload one region runs: a p2p ring, then a checksummed stream
/// write, then a checkpoint save + restore. Returns the number of wrong
/// restored values (0 on a fully healthy region).
std::int64_t runWorkload(rt::Node& node, pfs::Pfs& fs, const SoakCase& c,
                         const std::string& streamName) {
  for (int round = 0; round < c.ringRounds; ++round) {
    const int next = (node.id() + 1) % node.nprocs();
    const int prev = (node.id() + node.nprocs() - 1) % node.nprocs();
    node.sendValue(next, /*tag=*/7, round * 100 + node.id());
    const int got = node.recvValue<int>(prev, 7);
    if (got != round * 100 + prev) {
      throw Error("soak: ring payload mismatch");
    }
  }
  node.barrier();

  coll::Processors P;
  coll::Distribution d(c.elements, &P, coll::DistKind::Block);
  coll::Collection<double> data(&d);
  ds::StreamOptions so;
  so.checksumData = true;
  so.aioQueueDepth = c.queueDepth;
  {
    ds::OStream s(fs, &d, streamName, so);
    for (int rec = 0; rec < c.records; ++rec) {
      data.forEachLocal([rec](double& v, std::int64_t g) {
        v = static_cast<double>(rec * 1000 + g) * 0.5;
      });
      s << data;
      s.write();
    }
    s.close();
  }

  ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
  mgr.save(data);
  coll::Collection<double> back(&d);
  mgr.restoreLatest(back);
  std::int64_t bad = 0;
  const int lastRec = c.records - 1;
  back.forEachLocal([&](double& v, std::int64_t g) {
    if (v != static_cast<double>(lastRec * 1000 + g) * 0.5) ++bad;
  });
  return bad;
}

/// Tolerant scan of whatever the aborted region left in `fs` under
/// `name`: must not crash, and the valid prefix must fit the file.
void checkSalvageable(pfs::Pfs& fs, const std::string& name) {
  rt::Machine probeMachine(1);
  ByteBuffer bytes;
  bool exists = false;
  probeMachine.run([&](rt::Node& node) {
    try {
      auto f = fs.open(node, name, pfs::OpenMode::Read);
      bytes.resize(static_cast<size_t>(f->size()));
      if (f->readAt(node, 0, bytes) != bytes.size()) {
        throw IoError("soak: short read of the aborted file");
      }
      exists = true;
    } catch (const Error&) {
      exists = false;  // the region died before creating the file
    }
  });
  // A region that died before finishing the 16-byte file header leaves
  // nothing scannable — scanFile types that as FormatError, which is fine;
  // the salvage guarantee starts at a complete header.
  if (!exists || bytes.size() < ds::kFileHeaderBytes) return;
  pfs::MemStorage image;
  image.writeAt(0, bytes);
  const ds::ScanResult scan = ds::scanFile(image);
  EXPECT_LE(scan.validPrefixEnd, bytes.size());
}

void runSeed(int seed) {
  const SoakCase c = deriveCase(seed);
  SCOPED_TRACE(strfmt(
      "seed=%d nprocs=%d elems=%lld records=%d queue=%d rounds=%d "
      "chaos='%s' fault=%s -- repro: PCXX_CHAOS_SEED=%d ./chaos_soak_test",
      seed, c.nprocs, static_cast<long long>(c.elements), c.records,
      c.queueDepth, c.ringRounds, c.chaosSpec.c_str(),
      c.withFaultPlan ? strfmt("crash@%llu:%llu",
                               static_cast<unsigned long long>(c.faultOp),
                               static_cast<unsigned long long>(c.faultDurable))
                            .c_str()
                      : "none",
      seed));

  rt::ChaosPlan chaos = rt::ChaosPlan::parse(
      c.chaosSpec, static_cast<std::uint64_t>(seed));
  rt::MachineOptions opts;
  opts.collectiveDeadlineSeconds = kDeadline;
  opts.recvDeadlineSeconds = kDeadline;
  opts.chaos = &chaos;

  pfs::Pfs fs = test::memFs();
  pfs::FaultPlan faults(static_cast<std::uint64_t>(seed));
  if (c.withFaultPlan) {
    faults.crashAtOp(c.faultOp, c.faultDurable);
    fs.setFaultHook(faults.hook());
  }

  rt::Machine m(c.nprocs, rt::CommModel{}, opts);
  std::atomic<std::int64_t> badRestores{0};
  bool abortedRegion = false;
  try {
    m.run([&](rt::Node& node) {
      badRestores.fetch_add(runWorkload(node, fs, c, "soak"));
    });
  } catch (const Error&) {
    // Typed failure — injected crash, watchdog trip, or peer unwind. The
    // no-hang invariant is that we got *here* instead of stalling.
    abortedRegion = true;
  }
  fs.setFaultHook(nullptr);

  if (!abortedRegion) {
    EXPECT_EQ(badRestores.load(), 0);
  } else {
    checkSalvageable(fs, "soak");
  }

  // The machine must be reusable after an abort: disarm the chaos plan and
  // run a clean region on a fresh file system. Deadlines stay armed as a
  // hang guard — a clean region never trips them.
  m.setChaosPlan(nullptr);
  pfs::Pfs cleanFs = test::memFs();
  std::atomic<std::int64_t> badClean{0};
  m.run([&](rt::Node& node) {
    badClean.fetch_add(runWorkload(node, cleanFs, c, "soak-clean"));
  });
  EXPECT_EQ(badClean.load(), 0);
}

class ChaosSoak : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoak, SeededSchedule) {
  if (const char* only = std::getenv("PCXX_CHAOS_SEED")) {
    if (GetParam() != std::atoi(only)) GTEST_SKIP() << "PCXX_CHAOS_SEED set";
  }
  runSeed(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosSoak, ::testing::Range(0, kSweepSeeds));

}  // namespace
