// Collective/recv watchdog + coordinated-abort tests: a mismatched or
// skipped collective must never hang — every node observes a typed error
// naming the stalled op and the missing node(s), and run() rethrows it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/machine.h"
#include "src/runtime/rt_errors.h"

#if PCXX_OBS_ENABLED
#include "src/obs/obs.h"
#endif

namespace {

using namespace pcxx;
using namespace pcxx::rt;

MachineOptions withCollectiveDeadline(double seconds) {
  MachineOptions opts;
  opts.collectiveDeadlineSeconds = seconds;
  return opts;
}

// A node that never shows up at a barrier: every *arriving* node gets a
// CollectiveTimeoutError naming the op and the missing node, and run()
// rethrows it.
TEST(Watchdog, SkippedCollectiveTimesOutOnEveryNode) {
  Machine m(3, CommModel{}, withCollectiveDeadline(0.3));
  std::atomic<int> typedCatches{0};
  try {
    m.run([&](Node& node) {
      if (node.id() == 2) return;  // never arrives
      try {
        node.barrier();
      } catch (const CollectiveTimeoutError& e) {
        EXPECT_EQ(e.opName, "barrier");
        EXPECT_EQ(e.missing, std::vector<int>{2});
        EXPECT_EQ(e.arrived.size(), 2u);
        EXPECT_TRUE(std::count(e.arrived.begin(), e.arrived.end(), 0));
        EXPECT_TRUE(std::count(e.arrived.begin(), e.arrived.end(), 1));
        typedCatches.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected CollectiveTimeoutError from run()";
  } catch (const CollectiveTimeoutError& e) {
    EXPECT_EQ(e.opName, "barrier");
    EXPECT_EQ(e.missing, std::vector<int>{2});
  }
  EXPECT_EQ(typedCatches.load(), 2);
}

// A peer blocked in recv() (not at the collective) is also unwound when
// the watchdog fires: the abort wakes its mailbox wait and it rethrows
// the machine's recorded timeout, so no thread is left behind.
TEST(Watchdog, RecvBlockedPeerIsUnwoundByCollectiveTimeout) {
  Machine m(3, CommModel{}, withCollectiveDeadline(0.3));
  std::atomic<bool> recvUnwound{false};
  try {
    m.run([&](Node& node) {
      if (node.id() == 2) {
        try {
          node.recv(0, /*tag=*/9);  // nobody sends: blocks until the abort
        } catch (const CollectiveTimeoutError&) {
          recvUnwound = true;
          throw;
        }
        return;
      }
      node.barrier();  // stalls: node 2 never arrives
    });
    FAIL() << "expected CollectiveTimeoutError from run()";
  } catch (const CollectiveTimeoutError& e) {
    EXPECT_EQ(e.missing, std::vector<int>{2});
  }
  EXPECT_TRUE(recvUnwound.load());
}

TEST(Watchdog, RecvDeadlineTurnsMissingMessageIntoTypedError) {
  MachineOptions opts;
  opts.recvDeadlineSeconds = 0.2;
  Machine m(1, CommModel{}, opts);
  try {
    m.run([](Node& node) { node.recv(kAnySource, /*tag=*/5); });
    FAIL() << "expected RecvTimeoutError";
  } catch (const RecvTimeoutError& e) {
    EXPECT_EQ(e.node, 0);
    EXPECT_EQ(e.src, kAnySource);
    EXPECT_EQ(e.tag, 5);
  }
}

// Divergent collectives (one node in barrier, another in allgatherU64) are
// detected at arrival by op name — no deadline needed — and both ops are
// named in the error.
TEST(Watchdog, MismatchedCollectivesAreDetectedAtArrival) {
  Machine m(2, CommModel{}, withCollectiveDeadline(5.0));
  try {
    m.run([](Node& node) {
      if (node.id() == 0) {
        node.barrier();
      } else {
        node.allgatherU64(1);
      }
    });
    FAIL() << "expected CollectiveMismatchError";
  } catch (const CollectiveMismatchError& e) {
    // Arrival order decides which op counts as "expected", so compare as
    // a set.
    const std::set<std::string> ops{e.expectedOp, e.actualOp};
    EXPECT_EQ(ops, (std::set<std::string>{"barrier", "allgatherU64"}));
    EXPECT_TRUE(e.divergingNode == 0 || e.divergingNode == 1);
  }
}

// With the watchdog armed, a healthy region behaves exactly as before.
TEST(Watchdog, ArmedDeadlineDoesNotPerturbHealthyCollectives) {
  MachineOptions opts;
  opts.collectiveDeadlineSeconds = 5.0;
  opts.recvDeadlineSeconds = 5.0;
  Machine m(4, CommModel{}, opts);
  m.run([](Node& node) {
    node.barrier();
    const auto all = node.allgatherU64(static_cast<std::uint64_t>(node.id()));
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[static_cast<size_t>(i)], static_cast<std::uint64_t>(i));
    }
    const int next = (node.id() + 1) % node.nprocs();
    const int prev = (node.id() + node.nprocs() - 1) % node.nprocs();
    node.sendValue(next, /*tag=*/1, node.id());
    EXPECT_EQ(node.recvValue<int>(prev, 1), prev);
    node.barrier();
  });
}

// After a watchdog abort the machine is reusable: the next run() starts
// from a clean slate and completes.
TEST(Watchdog, MachineIsReusableAfterTimeoutAbort) {
  Machine m(2, CommModel{}, withCollectiveDeadline(0.25));
  EXPECT_THROW(m.run([](Node& node) {
                 if (node.id() == 0) node.barrier();
               }),
               CollectiveTimeoutError);
  std::atomic<int> completed{0};
  m.run([&](Node& node) {
    node.barrier();
    completed.fetch_add(1 + node.id() * 0);
  });
  EXPECT_EQ(completed.load(), 2);
}

#if PCXX_OBS_ENABLED
TEST(Watchdog, TripIsCounted) {
  obs::MetricsRegistry registry(2);
  obs::Observer observer;
  observer.metrics = &registry;
  observer.timeMode = obs::Observer::TimeMode::Wall;
  Machine m(2, CommModel{}, withCollectiveDeadline(0.25));
  m.attachObserver(observer);
  EXPECT_THROW(m.run([](Node& node) {
                 if (node.id() == 0) node.barrier();
               }),
               CollectiveTimeoutError);
  std::uint64_t trips = 0;
  for (int i = 0; i < 2; ++i) {
    trips += registry.node(i).counter(obs::Counter::RtWatchdogTrips);
  }
  EXPECT_GE(trips, 1u);
}
#endif

}  // namespace
