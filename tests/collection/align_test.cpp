// Tests for HPF-style alignment, including the pC++ spec-string parser.
#include <gtest/gtest.h>

#include "src/collection/align.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::coll;

TEST(Align, IdentityDefault) {
  Align a(12);
  EXPECT_TRUE(a.identity());
  EXPECT_EQ(a.map(5), 5);
  EXPECT_EQ(a.size(), 12);
}

TEST(Align, AffineMapping) {
  Align a(6, /*stride=*/2, /*offset=*/1);
  EXPECT_FALSE(a.identity());
  EXPECT_EQ(a.map(0), 1);
  EXPECT_EQ(a.map(5), 11);
}

TEST(Align, ZeroStrideRejected) {
  EXPECT_THROW(Align(6, 0, 0), UsageError);
  EXPECT_THROW(Align(-1, 1, 0), UsageError);
}

struct SpecCase {
  const char* spec;
  std::int64_t stride;
  std::int64_t offset;
};

class AlignSpecTest : public ::testing::TestWithParam<SpecCase> {};

TEST_P(AlignSpecTest, ParsesPaperSyntax) {
  const auto& c = GetParam();
  Align a(12, std::string(c.spec));
  EXPECT_EQ(a.stride(), c.stride) << c.spec;
  EXPECT_EQ(a.offset(), c.offset) << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Specs, AlignSpecTest,
    ::testing::Values(
        SpecCase{"[ALIGN(dummy[i], d[i])]", 1, 0},           // Figure 3
        SpecCase{"[ALIGN(x[i], d[2*i])]", 2, 0},
        SpecCase{"[ALIGN(x[i], d[i+3])]", 1, 3},
        SpecCase{"[ALIGN(x[i], d[i-1])]", 1, -1},
        SpecCase{"[ALIGN(x[i], d[2*i+1])]", 2, 1},
        SpecCase{"[ALIGN(x[i], d[3*i-2])]", 3, -2},
        SpecCase{"[ALIGN( x[i] , d[ 2 * i + 1 ] )]", 2, 1},  // spaces
        SpecCase{"[ALIGN(x[i], d[-1*i+11])]", -1, 11}));     // reversal

TEST(AlignSpec, MalformedSpecsThrow) {
  EXPECT_THROW(Align(4, std::string("[NOPE(x[i], d[i])]")), UsageError);
  EXPECT_THROW(Align(4, std::string("[ALIGN(x[i])]")), UsageError);
  EXPECT_THROW(Align(4, std::string("[ALIGN(x[i], d[j])]")), UsageError);
  EXPECT_THROW(Align(4, std::string("[ALIGN(x[i], d[2i])]")), UsageError);
  EXPECT_THROW(Align(4, std::string("[ALIGN(x[i], d[0*i])]")), UsageError);
}

TEST(Align, EncodeDecodeRoundTrip) {
  Align a(42, -3, 7);
  ByteBuffer buf;
  ByteWriter w(buf);
  a.encode(w);
  ByteReader r(buf);
  const Align b = Align::decode(r);
  EXPECT_EQ(a, b);
}

TEST(Align, DecodeRejectsZeroStride) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.i64(4);
  w.i64(0);  // stride
  w.i64(0);
  ByteReader r(buf);
  EXPECT_THROW(Align::decode(r), FormatError);
}

TEST(Align, EqualityComparesAllComponents) {
  EXPECT_EQ(Align(4, 1, 0), Align(4, 1, 0));
  EXPECT_NE(Align(4, 1, 0), Align(5, 1, 0));
  EXPECT_NE(Align(4, 1, 0), Align(4, 2, 0));
  EXPECT_NE(Align(4, 1, 0), Align(4, 1, 2));
}

}  // namespace
