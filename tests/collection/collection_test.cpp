// Tests for Collection<T>: SPMD construction, local element access, global
// access with ownership checks, parallel apply, and field references.
#include <gtest/gtest.h>

#include <atomic>

#include "src/collection/collection.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::coll;

struct Elem {
  int value = -1;
  double weight = 0.0;
};

TEST(Collection, EachNodeHoldsExactlyItsLocalElements) {
  rt::Machine m(4);
  std::atomic<std::int64_t> totalLocal{0};
  m.run([&](rt::Node& node) {
    Processors P;
    Distribution d(13, &P, DistKind::Cyclic);
    Collection<Elem> c(&d);
    totalLocal.fetch_add(c.localCount());
    EXPECT_EQ(c.size(), 13);
    EXPECT_EQ(c.localCount(), d.localCount(node.id()));
  });
  EXPECT_EQ(totalLocal.load(), 13);
}

TEST(Collection, ForEachLocalVisitsAscendingGlobals) {
  rt::Machine m(3);
  m.run([](rt::Node& node) {
    Processors P;
    Distribution d(11, &P, DistKind::Block);
    Collection<Elem> c(&d);
    std::int64_t prev = -1;
    std::int64_t visits = 0;
    c.forEachLocal([&](Elem& e, std::int64_t g) {
      e.value = static_cast<int>(g);
      EXPECT_GT(g, prev);
      EXPECT_EQ(d.ownerOf(g), node.id());
      prev = g;
      ++visits;
    });
    EXPECT_EQ(visits, c.localCount());
    // local(j) / globalIndexOf(j) agree with the traversal.
    for (std::int64_t j = 0; j < c.localCount(); ++j) {
      EXPECT_EQ(c.local(j).value, static_cast<int>(c.globalIndexOf(j)));
    }
  });
}

TEST(Collection, AtAccessesOwnedGlobalsOnly) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(8, &P, DistKind::Cyclic);
    Collection<Elem> c(&d);
    c.forEachLocal([](Elem& e, std::int64_t g) {
      e.value = static_cast<int>(100 + g);
    });
    for (std::int64_t g = 0; g < 8; ++g) {
      if (c.owns(g)) {
        EXPECT_EQ(c.at(g).value, static_cast<int>(100 + g));
      } else {
        EXPECT_THROW(c.at(g), UsageError);
      }
    }
    EXPECT_THROW(c.at(-1), UsageError);
    EXPECT_THROW(c.at(8), UsageError);
  });
}

TEST(Collection, LocalIndexBoundsChecked) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(4, &P, DistKind::Block);
    Collection<Elem> c(&d);
    EXPECT_THROW(c.local(-1), UsageError);
    EXPECT_THROW(c.local(c.localCount()), UsageError);
    EXPECT_THROW(c.globalIndexOf(c.localCount()), UsageError);
  });
}

TEST(Collection, AlignedConstructionUsesAlignment) {
  rt::Machine m(2);
  m.run([](rt::Node& node) {
    Processors P;
    Distribution d(12, &P, DistKind::Block);
    Align a(6, 2, 0);  // elements at template slots 0,2,4,6,8,10
    Collection<Elem> c(&d, &a);
    EXPECT_EQ(c.size(), 6);
    // Slots 0..5 are node 0's block: elements 0,1,2 (slots 0,2,4).
    if (node.id() == 0) {
      EXPECT_EQ(c.localCount(), 3);
      EXPECT_EQ(c.globalIndexOf(0), 0);
      EXPECT_EQ(c.globalIndexOf(2), 2);
    } else {
      EXPECT_EQ(c.localCount(), 3);
      EXPECT_EQ(c.globalIndexOf(0), 3);
    }
  });
}

TEST(Collection, NullPointersRejected) {
  rt::Machine m(1);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(4, &P, DistKind::Block);
    EXPECT_THROW(Collection<Elem>(nullptr), UsageError);
    EXPECT_THROW(Collection<Elem>(&d, nullptr), UsageError);
  });
}

TEST(Collection, OutsideMachineContextThrows) {
  EXPECT_THROW(Processors{}, UsageError);
}

TEST(Collection, ProcessorsSubsetValidation) {
  rt::Machine m(4);
  m.run([](rt::Node&) {
    Processors sub(2);
    EXPECT_EQ(sub.count(), 2);
    EXPECT_THROW(Processors(0), UsageError);
    EXPECT_THROW(Processors(5), UsageError);
  });
}

TEST(Collection, FieldRefReadsAndWritesMember) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(6, &P, DistKind::Cyclic);
    Collection<Elem> c(&d);
    auto f = c.field(&Elem::weight);
    EXPECT_EQ(&f.collection(), &c);
    c.forEachLocal([&](Elem& e, std::int64_t g) {
      f.of(e) = static_cast<double>(g) * 1.5;
    });
    c.forEachLocal([&](Elem& e, std::int64_t g) {
      EXPECT_DOUBLE_EQ(e.weight, static_cast<double>(g) * 1.5);
    });
  });
}

TEST(Collection, NonCopyableElementTypeSupported) {
  struct Owner {
    int* data = nullptr;
    Owner() = default;
    Owner(const Owner&) = delete;
    Owner& operator=(const Owner&) = delete;
    ~Owner() { delete data; }
  };
  rt::Machine m(2);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(5, &P, DistKind::Block);
    Collection<Owner> c(&d);
    c.forEachLocal([](Owner& o, std::int64_t g) {
      o.data = new int(static_cast<int>(g));
    });
    c.forEachLocal([](Owner& o, std::int64_t g) {
      EXPECT_EQ(*o.data, static_cast<int>(g));
    });
  });
}

TEST(Collection, ScalarElementTypeSupported) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    Processors P;
    Distribution d(7, &P, DistKind::Cyclic);
    Collection<double> c(&d);
    c.forEachLocal([](double& v, std::int64_t g) {
      v = static_cast<double>(g) * 2.0;
    });
    c.forEachLocal([](double& v, std::int64_t g) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(g) * 2.0);
    });
  });
}

}  // namespace
