// Unit + property tests for HPF-style distributions: the index math must be
// a bijection between global indices and (owner, local) pairs for every
// kind, size, and node count.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/collection/distribution.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::coll;

TEST(Distribution, BlockLaysOutContiguously) {
  Distribution d(10, 4, DistKind::Block, 1);
  // blockWidth = ceil(10/4) = 3: [0..2]=0, [3..5]=1, [6..8]=2, [9]=3.
  EXPECT_EQ(d.ownerOf(0), 0);
  EXPECT_EQ(d.ownerOf(2), 0);
  EXPECT_EQ(d.ownerOf(3), 1);
  EXPECT_EQ(d.ownerOf(8), 2);
  EXPECT_EQ(d.ownerOf(9), 3);
  EXPECT_EQ(d.localCount(0), 3);
  EXPECT_EQ(d.localCount(3), 1);
}

TEST(Distribution, CyclicDealsRoundRobin) {
  Distribution d(10, 3, DistKind::Cyclic, 1);
  EXPECT_EQ(d.ownerOf(0), 0);
  EXPECT_EQ(d.ownerOf(1), 1);
  EXPECT_EQ(d.ownerOf(2), 2);
  EXPECT_EQ(d.ownerOf(3), 0);
  EXPECT_EQ(d.localCount(0), 4);  // 0,3,6,9
  EXPECT_EQ(d.localCount(1), 3);  // 1,4,7
  EXPECT_EQ(d.localCount(2), 3);  // 2,5,8
  EXPECT_EQ(d.globalToLocal(9), 3);
  EXPECT_EQ(d.localToGlobal(0, 3), 9);
}

TEST(Distribution, BlockCyclicDealsBlocks) {
  Distribution d(12, 2, DistKind::BlockCyclic, 3);
  // Blocks: [0-2]=0, [3-5]=1, [6-8]=0, [9-11]=1.
  EXPECT_EQ(d.ownerOf(2), 0);
  EXPECT_EQ(d.ownerOf(3), 1);
  EXPECT_EQ(d.ownerOf(7), 0);
  EXPECT_EQ(d.ownerOf(11), 1);
  EXPECT_EQ(d.localCount(0), 6);
  EXPECT_EQ(d.globalToLocal(7), 4);  // 0,1,2,6,7 -> position 4
  EXPECT_EQ(d.localToGlobal(0, 4), 7);
}

TEST(Distribution, SizeSmallerThanNodeCount) {
  Distribution d(2, 8, DistKind::Block, 1);
  EXPECT_EQ(d.localCount(0), 1);
  EXPECT_EQ(d.localCount(1), 1);
  for (int p = 2; p < 8; ++p) {
    EXPECT_EQ(d.localCount(p), 0);
  }
}

TEST(Distribution, OutOfRangeIndexThrows) {
  Distribution d(10, 2, DistKind::Cyclic, 1);
  EXPECT_THROW(d.ownerOf(-1), UsageError);
  EXPECT_THROW(d.ownerOf(10), UsageError);
  EXPECT_THROW(d.localCount(2), UsageError);
  EXPECT_THROW(d.localToGlobal(0, 99), UsageError);
}

TEST(Distribution, InvalidParametersThrow) {
  EXPECT_THROW(Distribution(-1, 2, DistKind::Block, 1), UsageError);
  EXPECT_THROW(Distribution(10, 0, DistKind::Block, 1), UsageError);
  EXPECT_THROW(Distribution(10, 2, DistKind::BlockCyclic, 0), UsageError);
}

TEST(Distribution, EqualityIgnoresBlockSizeUnlessBlockCyclic) {
  Distribution a(10, 2, DistKind::Cyclic, 1);
  Distribution b(10, 2, DistKind::Cyclic, 5);
  EXPECT_EQ(a, b);
  Distribution c(10, 2, DistKind::BlockCyclic, 2);
  Distribution e(10, 2, DistKind::BlockCyclic, 3);
  EXPECT_NE(c, e);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Distribution(11, 2, DistKind::Cyclic, 1));
  EXPECT_NE(a, Distribution(10, 3, DistKind::Cyclic, 1));
}

TEST(Distribution, EncodeDecodeRoundTrip) {
  for (auto kind :
       {DistKind::Block, DistKind::Cyclic, DistKind::BlockCyclic}) {
    Distribution d(123, 7, kind, 4);
    ByteBuffer buf;
    ByteWriter w(buf);
    d.encode(w);
    ByteReader r(buf);
    EXPECT_EQ(Distribution::decode(r), d);
  }
}

TEST(Distribution, DecodeRejectsGarbage) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.i64(10);
  w.u32(2);
  w.u8(99);  // bad kind
  w.i64(1);
  ByteReader r(buf);
  EXPECT_THROW(Distribution::decode(r), FormatError);
}

// ---------------------------------------------------------------------------
// Property sweep: ownerOf / localCount / globalToLocal / localToGlobal form
// a consistent bijection for every (kind, size, nprocs, blockSize).
// ---------------------------------------------------------------------------

using DistCase = std::tuple<DistKind, std::int64_t, int, std::int64_t>;

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, IndexMathIsABijection) {
  const auto [kind, size, nprocs, blockSize] = GetParam();
  Distribution d(size, nprocs, kind, blockSize);

  // Forward: every global index maps to a unique (owner, local) pair with
  // local < localCount(owner), and localToGlobal inverts it.
  std::vector<std::vector<bool>> seen(static_cast<size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    seen[static_cast<size_t>(p)].assign(
        static_cast<size_t>(d.localCount(p)), false);
  }
  std::int64_t totalCounted = 0;
  for (int p = 0; p < nprocs; ++p) totalCounted += d.localCount(p);
  ASSERT_EQ(totalCounted, size) << "localCount must partition the index set";

  for (std::int64_t g = 0; g < size; ++g) {
    const int owner = d.ownerOf(g);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, nprocs);
    const std::int64_t local = d.globalToLocal(g);
    ASSERT_GE(local, 0);
    ASSERT_LT(local, d.localCount(owner))
        << "g=" << g << " owner=" << owner;
    ASSERT_FALSE(seen[static_cast<size_t>(owner)][static_cast<size_t>(local)])
        << "duplicate (owner, local) for g=" << g;
    seen[static_cast<size_t>(owner)][static_cast<size_t>(local)] = true;
    ASSERT_EQ(d.localToGlobal(owner, local), g);
  }
}

TEST_P(DistributionProperty, LocalOrderIsAscendingGlobal) {
  const auto [kind, size, nprocs, blockSize] = GetParam();
  Distribution d(size, nprocs, kind, blockSize);
  for (int p = 0; p < nprocs; ++p) {
    std::int64_t prev = -1;
    for (std::int64_t j = 0; j < d.localCount(p); ++j) {
      const std::int64_t g = d.localToGlobal(p, j);
      ASSERT_GT(g, prev) << "local order must be ascending global order";
      prev = g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributionProperty,
    ::testing::Combine(
        ::testing::Values(DistKind::Block, DistKind::Cyclic,
                          DistKind::BlockCyclic),
        ::testing::Values<std::int64_t>(0, 1, 7, 12, 64, 100),
        ::testing::Values(1, 2, 3, 5, 8),
        ::testing::Values<std::int64_t>(1, 2, 3, 7)));

}  // namespace
