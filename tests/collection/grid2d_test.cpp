// Tests for Grid2D: row-distributed 2-D grids with variable density, and
// their d/stream round trip (the paper's motivating data structure).
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(Grid2D, RowsPartitionedAcrossNodes) {
  rt::Machine m(3);
  std::atomic<std::int64_t> totalRows{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<double> grid(10, 4, &P);
    totalRows.fetch_add(grid.collection().localCount());
    EXPECT_EQ(grid.rows(), 10);
    EXPECT_EQ(grid.initialCols(), 4);
  });
  EXPECT_EQ(totalRows.load(), 10);
}

TEST(Grid2D, CellAccessAndBounds) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<int> grid(6, 3, &P);
    grid.forEachLocalRow([](std::int64_t i, std::vector<int>& cells) {
      for (size_t j = 0; j < cells.size(); ++j) {
        cells[j] = static_cast<int>(i * 10 + static_cast<std::int64_t>(j));
      }
    });
    for (std::int64_t i = 0; i < 6; ++i) {
      if (!grid.ownsRow(i)) continue;
      EXPECT_EQ(grid.at(i, 2), static_cast<int>(i * 10 + 2));
      EXPECT_THROW(grid.at(i, 3), UsageError);
      EXPECT_THROW(grid.at(i, -1), UsageError);
    }
  });
}

TEST(Grid2D, VariableDensityRefinement) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<double> grid(8, 2, &P);
    // Refine row i to 2^(i%4) cells: densities vary 1..8x.
    grid.forEachLocalRow([](std::int64_t i, std::vector<double>& cells) {
      cells.resize(static_cast<size_t>(2) << (i % 4));
    });
    for (std::int64_t i = 0; i < 8; ++i) {
      if (!grid.ownsRow(i)) continue;
      EXPECT_EQ(grid.row(i).size(), static_cast<size_t>(2) << (i % 4));
    }
    EXPECT_GT(grid.localCellCount(), 0);
  });
}

TEST(Grid2D, StreamsRoundTripWithVariableDensity) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<double> grid(12, 2, &P, coll::DistKind::Cyclic);
    grid.forEachLocalRow([](std::int64_t i, std::vector<double>& cells) {
      cells.resize(static_cast<size_t>(1 + i % 5));
      for (size_t j = 0; j < cells.size(); ++j) {
        cells[j] = static_cast<double>(i) + 0.01 * static_cast<double>(j);
      }
    });
    {
      ds::OStream s(fs, &grid.distribution(), "grid2d");
      s << grid.collection();
      s.write();
    }
    coll::Grid2D<double> back(12, 2, &P, coll::DistKind::Cyclic);
    ds::IStream in(fs, &back.distribution(), "grid2d");
    in.read();
    in >> back.collection();
    back.forEachLocalRow([](std::int64_t i, std::vector<double>& cells) {
      ASSERT_EQ(cells.size(), static_cast<size_t>(1 + i % 5));
      for (size_t j = 0; j < cells.size(); ++j) {
        EXPECT_DOUBLE_EQ(cells[j],
                         static_cast<double>(i) +
                             0.01 * static_cast<double>(j));
      }
    });
  });
}

TEST(Grid2D, CrossNodeCountRestore) {
  // A refined grid checkpointed on 4 nodes restores on 2 with densities
  // intact — the adaptive-application checkpoint scenario.
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Grid2D<int> grid(9, 1, &P);
      grid.forEachLocalRow([](std::int64_t i, std::vector<int>& cells) {
        cells.assign(static_cast<size_t>(1 + i), static_cast<int>(i));
      });
      ds::OStream s(fs, &grid.distribution(), "gridmove");
      s << grid.collection();
      s.write();
    });
  }
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<int> grid(9, 1, &P);
    ds::IStream in(fs, &grid.distribution(), "gridmove");
    in.read();
    in >> grid.collection();
    grid.forEachLocalRow([](std::int64_t i, std::vector<int>& cells) {
      ASSERT_EQ(cells.size(), static_cast<size_t>(1 + i));
      for (int v : cells) {
        EXPECT_EQ(v, static_cast<int>(i));
      }
    });
  });
}

TEST(Grid2D, ZeroSizedGrids) {
  rt::Machine m(2);
  m.run([](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<int> empty(0, 5, &P);
    EXPECT_EQ(empty.collection().localCount(), 0);
    coll::Grid2D<int> thin(3, 0, &P);
    thin.forEachLocalRow([](std::int64_t, std::vector<int>& cells) {
      EXPECT_TRUE(cells.empty());
    });
    EXPECT_THROW(coll::Grid2D<int>(-1, 2, &P), UsageError);
  });
}

}  // namespace
