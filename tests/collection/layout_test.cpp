// Tests for Layout: ownership through an alignment, local orders, and the
// on-disk encoding d/stream record headers rely on.
#include <gtest/gtest.h>

#include <set>

#include "src/collection/layout.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::coll;

TEST(Layout, IdentityMatchesDistributionMath) {
  Distribution d(20, 4, DistKind::Cyclic, 1);
  Layout layout(d);
  for (std::int64_t g = 0; g < 20; ++g) {
    EXPECT_EQ(layout.ownerOf(g), d.ownerOf(g));
  }
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(layout.localCount(p), d.localCount(p));
  }
}

TEST(Layout, StridedAlignmentShiftsOwnership) {
  // 6 collection elements aligned to template slots 0,2,4,6,8,10 of a
  // 12-slot BLOCK distribution over 2 nodes (slots 0..5 -> node 0).
  Distribution d(12, 2, DistKind::Block, 1);
  Align a(6, /*stride=*/2, /*offset=*/0);
  Layout layout(d, a);
  EXPECT_EQ(layout.ownerOf(0), 0);  // slot 0
  EXPECT_EQ(layout.ownerOf(2), 0);  // slot 4
  EXPECT_EQ(layout.ownerOf(3), 1);  // slot 6
  EXPECT_EQ(layout.ownerOf(5), 1);  // slot 10
  EXPECT_EQ(layout.localCount(0), 3);
  EXPECT_EQ(layout.localCount(1), 3);
}

TEST(Layout, OffsetAlignmentRotatesCyclicOwnership) {
  Distribution d(13, 3, DistKind::Cyclic, 1);
  Align a(12, /*stride=*/1, /*offset=*/1);
  Layout layout(d, a);
  for (std::int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(layout.ownerOf(i), static_cast<int>((i + 1) % 3));
  }
}

TEST(Layout, OutOfBoundsAlignmentRejected) {
  Distribution d(10, 2, DistKind::Block, 1);
  EXPECT_THROW(Layout(d, Align(6, 2, 0)), UsageError);   // maps to 10
  EXPECT_THROW(Layout(d, Align(4, 1, -1)), UsageError);  // maps to -1
  EXPECT_NO_THROW(Layout(d, Align(5, 2, 0)));            // maps to 0..8
}

TEST(Layout, LocalElementsPartitionTheCollection) {
  Distribution d(30, 4, DistKind::BlockCyclic, 3);
  Align a(15, 2, 0);
  Layout layout(d, a);
  std::set<std::int64_t> all;
  for (int p = 0; p < 4; ++p) {
    const auto locals = layout.localElements(p);
    EXPECT_EQ(static_cast<std::int64_t>(locals.size()),
              layout.localCount(p));
    std::int64_t prev = -1;
    for (std::int64_t g : locals) {
      EXPECT_GT(g, prev);  // ascending
      prev = g;
      EXPECT_TRUE(all.insert(g).second) << "element owned twice";
      EXPECT_EQ(layout.ownerOf(g), p);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), layout.size());
}

TEST(Layout, OwnerTableMatchesOwnerOf) {
  Distribution d(16, 3, DistKind::Cyclic, 1);
  Layout layout(d, Align(16));
  const auto owners = layout.ownerTable();
  ASSERT_EQ(owners.size(), 16u);
  for (std::int64_t g = 0; g < 16; ++g) {
    EXPECT_EQ(owners[static_cast<size_t>(g)], layout.ownerOf(g));
  }
}

TEST(Layout, EncodeDecodeRoundTrip) {
  Distribution d(40, 5, DistKind::BlockCyclic, 2);
  Align a(20, 2, 1);
  Layout layout(d, a);
  ByteBuffer buf;
  ByteWriter w(buf);
  layout.encode(w);
  ByteReader r(buf);
  const Layout back = Layout::decode(r);
  EXPECT_EQ(back, layout);
  EXPECT_EQ(back.size(), 20);
  EXPECT_EQ(back.nprocs(), 5);
}

TEST(Layout, EqualityRequiresBothParts) {
  Distribution d(10, 2, DistKind::Block, 1);
  EXPECT_EQ(Layout(d, Align(10)), Layout(d, Align(10)));
  EXPECT_NE(Layout(d, Align(10)), Layout(d, Align(5, 2, 0)));
  Distribution d2(10, 2, DistKind::Cyclic, 1);
  EXPECT_NE(Layout(d, Align(10)), Layout(d2, Align(10)));
}

TEST(Layout, EmptyCollection) {
  Distribution d(8, 2, DistKind::Block, 1);
  Layout layout(d, Align(0));
  EXPECT_EQ(layout.size(), 0);
  EXPECT_EQ(layout.localCount(0), 0);
  EXPECT_TRUE(layout.localElements(1).empty());
  EXPECT_TRUE(layout.ownerTable().empty());
}

}  // namespace
