// A minimal recursive-descent JSON syntax checker for tests that must
// assert generated JSON "loads cleanly" without a JSON library dependency.
// Accepts exactly the RFC 8259 grammar (no comments, no trailing commas).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace pcxx::test {

class JsonChecker {
 public:
  /// True iff `text` is one complete, syntactically valid JSON value.
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skipWs();
    if (!c.value()) return false;
    c.skipWs();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skipWs();
    if (eat('}')) return true;
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (!eat(':')) return false;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skipWs();
    if (eat(']')) return true;
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (true) {
      if (pos_ >= text_.size()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      return false;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace pcxx::test
