// Shared helpers for pcxx tests.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "pfs/parallel_file.h"
#include "runtime/machine.h"

namespace pcxx::test {

/// Run an SPMD body on a fresh machine of `nprocs` nodes. Exceptions from
/// node functions propagate out of this call (gtest reports them).
inline void runSpmd(int nprocs, const std::function<void(rt::Node&)>& body,
                    rt::CommModel comm = {}) {
  rt::Machine machine(nprocs, comm);
  machine.run(body);
}

/// A fresh in-memory file system with no timing model.
inline pfs::Pfs memFs() { return pfs::Pfs(pfs::PfsConfig{}); }

/// gtest assertions inside SPMD bodies: EXPECT_* is thread-safe enough for
/// our use (failures are recorded); ASSERT_* must not be used off the main
/// thread, so tests throw instead to abort a node.

}  // namespace pcxx::test
