// Backward/forward compatibility of the index footer.
//
//  * Backward: a checked-in pre-footer fixture (written before the footer
//    existed / with indexFooter=false) must still read cleanly with a
//    footer-aware reader — the probe reports Absent and replay takes over.
//  * Forward: a footer'd file read with dsindexUseFooter=false must deliver
//    exactly the same bytes as the indexed read — the option changes the
//    access path, never the data.
//  * dsdump --verify exits 0 on both shapes.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

#ifndef PCXX_DSDUMP_PATH
#error "PCXX_DSDUMP_PATH must be defined by the build"
#endif
#ifndef PCXX_REPO_ROOT
#error "PCXX_REPO_ROOT must be defined by the build"
#endif

namespace {

using namespace pcxx;
namespace stdfs = std::filesystem;

// The fixture's shape (see tests/dsindex/fixtures/README.md): 2 writer
// nodes, Block over 8 ints, 2 records, element value g * 3 + r * 7.
constexpr std::int64_t kFixtureElements = 8;
constexpr int kFixtureRecords = 2;

const stdfs::path kFixture = stdfs::path(PCXX_REPO_ROOT) / "tests" /
                             "dsindex" / "fixtures" / "prefooter_v1.ds";

ByteBuffer loadFixture() {
  std::ifstream in(kFixture, std::ios::binary);
  EXPECT_TRUE(in.good()) << kFixture;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  ByteBuffer bytes(s.size());
  std::memcpy(bytes.data(), s.data(), s.size());
  return bytes;
}

std::pair<int, std::string> runDsdump(const std::string& args) {
  const stdfs::path outPath =
      stdfs::temp_directory_path() /
      ("pcxx_compat_" + std::to_string(::getpid()) + ".out");
  const std::string cmd = std::string(PCXX_DSDUMP_PATH) + " " + args + " > " +
                          outPath.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::ifstream in(outPath);
  std::ostringstream ss;
  ss << in.rdbuf();
  stdfs::remove(outPath);
  return {WEXITSTATUS(rc), ss.str()};
}

TEST(Compat, PreFooterFixtureStillReads) {
  const ByteBuffer image = loadFixture();
  ASSERT_FALSE(image.empty());

  pfs::Pfs fs = test::memFs();
  rt::Machine install(1);
  install.run([&](rt::Node& node) {
    auto f = fs.open(node, "old.ds", pfs::OpenMode::Create);
    f->writeAt(node, 0, image);
  });

  rt::Machine m(2);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kFixtureElements, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream is(fs, &d, "old.ds");
    EXPECT_FALSE(is.indexed());
    EXPECT_EQ(is.indexedRecordCount(), std::nullopt);
    for (int r = 0; r < kFixtureRecords; ++r) {
      is.read();
      is >> g;
      g.forEachLocal([&, r](int& v, std::int64_t i) {
        if (v != static_cast<int>(i * 3 + r * 7)) bad.fetch_add(1);
      });
    }
    EXPECT_TRUE(is.atEnd());
    // Random access works too — by replay.
    is.readRecord(1);
    is >> g;
    g.forEachLocal([&](int& v, std::int64_t i) {
      if (v != static_cast<int>(i * 3 + 7)) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Compat, FooterIgnoredReadMatchesIndexedReadByteForByte) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 11;
  const int records = 3;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    ds::OStream s(fs, &d, "new.ds");
    for (int r = 0; r < records; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(i) * 1.5 + r;
      });
      s << g;
      s.write();
    }
  });

  // Extract with and without the index; compare raw element bytes in
  // deterministic (node, local) order.
  auto extractAll = [&](bool useFooter) {
    std::vector<std::array<ByteBuffer, 2>> perNode(
        static_cast<size_t>(records));
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(n, &P, coll::DistKind::Cyclic);
      coll::Collection<double> g(&d);
      ds::StreamOptions so;
      so.dsindexUseFooter = useFooter;
      ds::IStream is(fs, &d, "new.ds", so);
      EXPECT_EQ(is.indexed(), useFooter);
      for (int r = 0; r < records; ++r) {
        is.read();
        is >> g;
        ByteBuffer& out =
            perNode[static_cast<size_t>(r)][static_cast<size_t>(node.id())];
        g.forEachLocal([&](double& v, std::int64_t) {
          const Byte* p = reinterpret_cast<const Byte*>(&v);
          out.insert(out.end(), p, p + 8);
        });
      }
    });
    std::vector<ByteBuffer> perRecord(static_cast<size_t>(records));
    for (size_t r = 0; r < perRecord.size(); ++r) {
      perRecord[r] = perNode[r][0];
      perRecord[r].insert(perRecord[r].end(), perNode[r][1].begin(),
                          perNode[r][1].end());
    }
    return perRecord;
  };

  const auto indexed = extractAll(true);
  const auto replayed = extractAll(false);
  for (int r = 0; r < records; ++r) {
    EXPECT_EQ(indexed[static_cast<size_t>(r)],
              replayed[static_cast<size_t>(r)])
        << "record " << r;
    EXPECT_FALSE(indexed[static_cast<size_t>(r)].empty());
  }
}

TEST(Compat, DsdumpVerifiesBothShapesWithExitZero) {
  // The pre-footer fixture, straight from the repository.
  auto [rcOld, outOld] = runDsdump("--verify " + kFixture.string());
  EXPECT_EQ(rcOld, 0) << outOld;
  EXPECT_NE(outOld.find("clean"), std::string::npos) << outOld;

  // A freshly written footer'd file on a POSIX-backed pfs.
  const stdfs::path dir = stdfs::temp_directory_path() /
                          ("pcxx_compat_dir_" + std::to_string(::getpid()));
  stdfs::create_directories(dir);
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir.string();
  pfs::Pfs fs(cfg);
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i);
    });
    ds::OStream s(fs, &d, "footered.ds");
    s << g;
    s.write();
  });
  auto [rcNew, outNew] = runDsdump("--verify " +
                                   (dir / "footered.ds").string());
  EXPECT_EQ(rcNew, 0) << outNew;
  auto [rcDeep, outDeep] = runDsdump("--verify --deep " +
                                     (dir / "footered.ds").string());
  EXPECT_EQ(rcDeep, 0) << outDeep;
  stdfs::remove_all(dir);
}

}  // namespace
