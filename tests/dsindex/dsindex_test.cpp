// pcxx::dsindex unit tests: footer codec round trip, probe status taxonomy,
// structural validation, and the O(1)-seek guarantee measured in real pfs
// read operations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/dsindex/dsindex.h"
#include "src/dstream/dstream.h"
#include "src/util/crc32.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

/// A consistent two-record index for a chain starting at offset 16.
dsindex::FileIndex sampleIndex() {
  dsindex::FileIndex idx;
  dsindex::IndexEntry a;
  a.offset = 16;
  a.headerBytes = 40;
  a.recordFlags = 1;
  a.recordBytes = 120;
  a.dataBytes = 64;
  a.layoutDigest = 0xDEADBEEF;
  a.extents = {40, 24};
  dsindex::IndexEntry b;
  b.offset = 136;
  b.headerBytes = 44;
  b.recordFlags = 0;
  b.recordBytes = 90;
  b.dataBytes = 30;
  b.layoutDigest = 0xDEADBEEF;
  b.extents = {30, 0};
  idx.entries = {a, b};
  return idx;
}

/// Wrap a ByteBuffer as the probe read callback.
dsindex::ReadFn readerFor(const ByteBuffer& image) {
  return [&image](std::uint64_t offset, std::span<Byte> out) {
    if (offset >= image.size()) return std::uint64_t{0};
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), image.size() - offset);
    std::memcpy(out.data(), image.data() + offset, static_cast<size_t>(n));
    return n;
  };
}

/// A fake "file": `chainBytes` of filler followed by the encoded footer.
ByteBuffer imageFor(const dsindex::FileIndex& idx, std::uint64_t chainBytes) {
  ByteBuffer image(static_cast<size_t>(chainBytes), Byte{0x5A});
  const ByteBuffer footer = idx.encodeFooter(chainBytes);
  image.insert(image.end(), footer.begin(), footer.end());
  return image;
}

TEST(DsIndexCodec, BodyRoundTripsThroughEncodeDecode) {
  const dsindex::FileIndex idx = sampleIndex();
  const ByteBuffer body = idx.encodeBody();
  const dsindex::FileIndex back = dsindex::FileIndex::decodeBody(body);
  EXPECT_EQ(back, idx);
}

TEST(DsIndexCodec, DecodeRejectsEveryDamagedByte) {
  // Any single corrupted body byte must surface as FormatError — the body
  // CRC covers everything before it, and the CRC field itself is the tail.
  const ByteBuffer body = sampleIndex().encodeBody();
  for (size_t i = 0; i < body.size(); ++i) {
    ByteBuffer bad = body;
    bad[i] = static_cast<Byte>(bad[i] ^ Byte{0x40});
    EXPECT_THROW(dsindex::FileIndex::decodeBody(bad), FormatError) << i;
  }
}

TEST(DsIndexProbe, ValidFooterRoundTrips) {
  const dsindex::FileIndex idx = sampleIndex();
  const ByteBuffer image = imageFor(idx, /*chainBytes=*/226);
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_EQ(probe.status, dsindex::ProbeStatus::Valid) << probe.reason;
  EXPECT_TRUE(probe.haveFooterOffset);
  EXPECT_EQ(probe.footerOffset, 226u);
  EXPECT_EQ(probe.index, idx);
}

TEST(DsIndexProbe, PreFooterFileIsAbsent) {
  const ByteBuffer image(500, Byte{0x33});
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_EQ(probe.status, dsindex::ProbeStatus::Absent);
  EXPECT_FALSE(probe.haveFooterOffset);
}

TEST(DsIndexProbe, TinyFileIsAbsent) {
  const ByteBuffer image(10, Byte{0x33});
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_EQ(probe.status, dsindex::ProbeStatus::Absent);
}

TEST(DsIndexProbe, DamagedBodyIsCorruptButKeepsChainEnd) {
  // A flipped body byte breaks the index, but the self-checksummed trailer
  // still pins the end of the record chain.
  ByteBuffer image = imageFor(sampleIndex(), 226);
  image[230] = static_cast<Byte>(image[230] ^ Byte{0x01});
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_EQ(probe.status, dsindex::ProbeStatus::Corrupt);
  EXPECT_TRUE(probe.haveFooterOffset);
  EXPECT_EQ(probe.footerOffset, 226u);
}

TEST(DsIndexProbe, DamagedTrailerIsAbsentWithoutChainEnd) {
  ByteBuffer image = imageFor(sampleIndex(), 226);
  image[image.size() - 3] ^= Byte{0xFF};  // inside the trailer magic
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_NE(probe.status, dsindex::ProbeStatus::Valid);
  EXPECT_FALSE(probe.haveFooterOffset);
}

TEST(DsIndexValidate, AcceptsContiguousChain) {
  EXPECT_EQ(dsindex::validateIndex(sampleIndex(), 16, 226), std::string());
}

TEST(DsIndexValidate, RejectsTinyHeaderBytes) {
  // Readers size header buffers (and an 8-byte prefix span) from this
  // field; anything below the minimal magic+length+crc encoding is a lie.
  dsindex::FileIndex idx = sampleIndex();
  idx.entries[0].headerBytes = 4;
  EXPECT_NE(dsindex::validateIndex(idx, 16, 226), std::string());
  idx.entries[0].headerBytes = 0;
  EXPECT_NE(dsindex::validateIndex(idx, 16, 226), std::string());
}

TEST(DsIndexProbe, LyingHeaderBytesWithValidCrcIsCorrupt) {
  // Both CRCs check out, but an entry promises a header too small to hold
  // even the record magic: the probe must reject it so no reader ever
  // builds an out-of-bounds prefix span from it.
  dsindex::FileIndex idx = sampleIndex();
  idx.entries[0].headerBytes = 0;
  const ByteBuffer image = imageFor(idx, /*chainBytes=*/226);
  const auto probe = dsindex::probeFooter(readerFor(image), image.size(), 16);
  EXPECT_EQ(probe.status, dsindex::ProbeStatus::Corrupt);
  EXPECT_TRUE(probe.haveFooterOffset);
}

TEST(DsIndexValidate, RejectsGapsExtentsAndWrongEnd) {
  dsindex::FileIndex gap = sampleIndex();
  gap.entries[1].offset += 8;  // hole between records
  EXPECT_NE(dsindex::validateIndex(gap, 16, 234), std::string());

  dsindex::FileIndex ext = sampleIndex();
  ext.entries[0].extents = {40, 25};  // sum != dataBytes
  EXPECT_NE(dsindex::validateIndex(ext, 16, 226), std::string());

  EXPECT_NE(dsindex::validateIndex(sampleIndex(), 16, 300), std::string());
}

TEST(DsIndexSeek, ReadRecordCostsConstantReadOpsOnAnIndexedFile) {
  // The acceptance bar for the footer: random access to record k takes the
  // same number of pfs read operations for every k. Chain replay, by
  // contrast, pays k extra header reads.
  pfs::Pfs fs = test::memFs();
  const int R = 8;
  const std::int64_t n = 16;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "o1.ds");
    for (int r = 0; r < R; ++r) {
      g.forEachLocal([r](int& v, std::int64_t i) {
        v = static_cast<int>(i + r * 100);
      });
      s << g;
      s.write();
    }
  });

  pfs::OpRecorder rec;
  auto measure = [&](bool useFooter, std::uint32_t k) {
    std::atomic<std::size_t> reads{0};
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(n, &P, coll::DistKind::Block);
      coll::Collection<int> g(&d);
      ds::StreamOptions so;
      so.dsindexUseFooter = useFooter;
      ds::IStream is(fs, &d, "o1.ds", so);
      EXPECT_EQ(is.indexed(), useFooter);
      node.barrier();
      if (node.id() == 0) {
        rec.clear();
        fs.setObserveHook(rec.hook());
      }
      node.barrier();
      is.readRecord(k);
      is >> g;
      node.barrier();
      if (node.id() == 0) {
        fs.setObserveHook(nullptr);
        std::size_t count = 0;
        for (const auto& op : rec.ops()) {
          if (op.kind == pfs::OpKind::Read) ++count;
        }
        reads.store(count);
      }
      std::int64_t bad = 0;
      g.forEachLocal([&](int& v, std::int64_t i) {
        if (v != static_cast<int>(i + static_cast<std::int64_t>(k) * 100)) {
          ++bad;
        }
      });
      EXPECT_EQ(bad, 0) << "k=" << k << " useFooter=" << useFooter;
    });
    return reads.load();
  };

  const std::size_t indexedFirst = measure(true, 0);
  const std::size_t indexedMid = measure(true, R / 2);
  const std::size_t indexedLast = measure(true, R - 1);
  EXPECT_EQ(indexedFirst, indexedMid);
  EXPECT_EQ(indexedFirst, indexedLast);

  const std::size_t replayFirst = measure(false, 0);
  const std::size_t replayLast = measure(false, R - 1);
  EXPECT_GT(replayLast, replayFirst);       // k header skips show up as I/O
  EXPECT_GT(replayLast, indexedLast);       // the footer actually saves ops
}

TEST(DsIndexSeek, SeekPastEndThrowsOnIndexedAndReplayPathsAlike) {
  // seekRecord(k) for k >= recordCount must throw UsageError on both the
  // indexed path and the chain-replay fallback — including k exactly equal
  // to the record count, where the fallback's skip loop completes and only
  // a final end-of-chain check can reject it.
  pfs::Pfs fs = test::memFs();
  const int R = 3;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "o3.ds");
    for (int r = 0; r < R; ++r) {
      g.forEachLocal([r](int& v, std::int64_t i) {
        v = static_cast<int>(i + r);
      });
      s << g;
      s.write();
    }
  });
  for (const bool useFooter : {true, false}) {
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(8, &P, coll::DistKind::Block);
      ds::StreamOptions so;
      so.dsindexUseFooter = useFooter;
      ds::IStream is(fs, &d, "o3.ds", so);
      EXPECT_EQ(is.indexed(), useFooter);
      is.seekRecord(R - 1);  // last record: fine on both paths
      EXPECT_THROW(is.seekRecord(R), UsageError) << useFooter;
      EXPECT_THROW(is.seekRecord(R + 5), UsageError) << useFooter;
    });
  }
}

TEST(DsIndexSeek, CountersAccountHitsAndSeeks) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "o2.ds");
    for (int r = 0; r < 3; ++r) {
      g.forEachLocal([r](int& v, std::int64_t i) {
        v = static_cast<int>(i + r);
      });
      s << g;
      s.write();
    }
  });

  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream is(fs, &d, "o2.ds");
    is.readRecord(2);
    is >> g;
    is.readRecord(0);
    is >> g;
  });
  m.detachObserver();
#if PCXX_OBS_ENABLED
  const auto snap = reg.snapshot();
  using obs::Counter;
  // Open probe: one hit per node. Two indexed seeks per node on top.
  EXPECT_EQ(snap.merged.counter(Counter::DsIndexSeeks), 4u);
  EXPECT_EQ(snap.merged.counter(Counter::DsIndexHits), 6u);
  EXPECT_EQ(snap.merged.counter(Counter::DsIndexFallbacks), 0u);
#endif
}

}  // namespace
