// Seeded corruption battery over the index footer: every way the footer can
// be damaged — truncated, bit-flipped, magic overwritten, lying offsets,
// record-count mismatch, torn by a short write at append time — must
// degrade to chain replay that returns exactly the pristine records, with
// dsindex.fallbacks accounting for the degradation. Never a crash, never a
// misread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/dsindex/dsindex.h"
#include "src/dstream/dstream.h"
#include "src/pfs/fault_plan.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kRecords = 4;
constexpr std::int64_t kElements = 12;

/// Write the reference file: kRecords records of doubles, 2 nodes, block.
void writeReference(pfs::Pfs& fs, const std::string& name) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::OStream s(fs, &d, name);
    for (int r = 0; r < kRecords; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(i) + r * 1000.0;
      });
      s << g;
      s.write();
    }
  });
}

/// Raw byte image of a mem-backed pfs file.
ByteBuffer fileImage(pfs::Pfs& fs, const std::string& name) {
  ByteBuffer image;
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Read);
    image.resize(static_cast<size_t>(f->size()));
    f->readAt(node, 0, image);
  });
  return image;
}

/// Create `name` holding exactly `image`.
void installImage(pfs::Pfs& fs, const std::string& name,
                  const ByteBuffer& image) {
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Create);
    f->writeAt(node, 0, image);
  });
}

/// Probe a raw byte image for an index footer.
dsindex::ProbeResult probeImage(const ByteBuffer& image) {
  return dsindex::probeFooter(
      [&image](std::uint64_t off, std::span<Byte> out) {
        if (off >= image.size()) return std::uint64_t{0};
        const std::uint64_t n =
            std::min<std::uint64_t>(out.size(), image.size() - off);
        std::memcpy(out.data(), image.data() + off, static_cast<size_t>(n));
        return n;
      },
      image.size(), ds::kFileHeaderBytes);
}

/// Append one reference-shaped record (value pattern `r = tag`) to `name`.
void appendOneRecord(pfs::Pfs& fs, const std::string& name, int tag) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.append = true;
    ds::OStream s(fs, &d, name, so);
    g.forEachLocal([tag](double& v, std::int64_t i) {
      v = static_cast<double>(i) + tag * 1000.0;
    });
    s << g;
    s.write();
  });
}

/// Sequentially read `count` records, checking the reference value pattern
/// and that the chain ends exactly there.
void expectSequentialRecords(pfs::Pfs& fs, const std::string& name,
                             int count, bool expectIndexed) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream in(fs, &d, name);
    EXPECT_EQ(in.indexed(), expectIndexed);
    for (int r = 0; r < count; ++r) {
      in.read();
      in >> g;
      std::int64_t bad = 0;
      g.forEachLocal([&](double& v, std::int64_t i) {
        if (v != static_cast<double>(i) + r * 1000.0) ++bad;
      });
      EXPECT_EQ(bad, 0) << "record " << r;
    }
    EXPECT_TRUE(in.atEnd());
  });
}

/// Read every record (shuffled by `rng`) via readRecord(k) and fingerprint
/// each; also assert the stream reports no usable index and that
/// dsindex.fallbacks ticked.
std::vector<std::uint64_t> readAllShuffled(pfs::Pfs& fs,
                                           const std::string& name,
                                           Rng& rng, bool expectIndexed) {
  std::vector<std::uint32_t> order(kRecords);
  for (int r = 0; r < kRecords; ++r) order[static_cast<size_t>(r)] = r;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(
                  rng.uniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }

  std::vector<std::atomic<std::uint64_t>> sums(kRecords);
  rt::Machine m(2);
  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream is(fs, &d, name);
    EXPECT_EQ(is.indexed(), expectIndexed);
    for (const std::uint32_t k : order) {
      is.readRecord(k);
      is >> g;
      g.forEachLocal([&](double& v, std::int64_t) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        sums[k].fetch_add(bits * 2654435761u);
      });
    }
  });
  m.detachObserver();
#if PCXX_OBS_ENABLED
  const auto snap = reg.snapshot();
  if (expectIndexed) {
    EXPECT_EQ(snap.merged.counter(obs::Counter::DsIndexFallbacks), 0u);
  } else {
    EXPECT_GE(snap.merged.counter(obs::Counter::DsIndexFallbacks), 1u);
  }
#endif
  std::vector<std::uint64_t> out(kRecords);
  for (int r = 0; r < kRecords; ++r) out[static_cast<size_t>(r)] = sums[r];
  return out;
}

class FooterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FooterFuzz, EveryCorruptionFallsBackToIdenticalBytes) {
  const int seed = GetParam();
  if (const char* only = std::getenv("PCXX_FOOTER_SEED")) {
    if (seed != std::atoi(only)) GTEST_SKIP() << "PCXX_FOOTER_SEED set";
  }
  SCOPED_TRACE(::testing::Message() << "repro: PCXX_FOOTER_SEED=" << seed
                                    << " ./footer_fuzz_test");
  Rng rng(0xF007ull * 2654435761ull + static_cast<std::uint64_t>(seed));

  pfs::Pfs fs = test::memFs();
  writeReference(fs, "ref.ds");
  const ByteBuffer image = fileImage(fs, "ref.ds");
  const std::uint64_t fileBytes = image.size();

  // Ground truth: the pristine indexed read.
  const std::vector<std::uint64_t> expected =
      readAllShuffled(fs, "ref.ds", rng, /*expectIndexed=*/true);

  const auto probe = probeImage(image);
  ASSERT_EQ(probe.status, dsindex::ProbeStatus::Valid) << probe.reason;
  const std::uint64_t footerOffset = probe.footerOffset;
  const std::uint64_t footerBytes = fileBytes - footerOffset;

  struct CaseDef {
    const char* name;
    std::function<ByteBuffer(ByteBuffer)> corrupt;
  };
  const std::vector<CaseDef> cases = {
      {"truncated-footer",
       [&](ByteBuffer img) {
         // Cut somewhere strictly inside the footer: trailer gone.
         const std::uint64_t keep =
             footerOffset + static_cast<std::uint64_t>(rng.uniformInt(
                                0, static_cast<std::int64_t>(footerBytes) -
                                       static_cast<std::int64_t>(
                                           dsindex::kTrailerBytes)));
         img.resize(static_cast<size_t>(keep));
         return img;
       }},
      {"bit-flipped-body",
       [&](ByteBuffer img) {
         // Flip one bit anywhere in the CRC-covered body.
         const std::uint64_t at =
             footerOffset + static_cast<std::uint64_t>(rng.uniformInt(
                                0, static_cast<std::int64_t>(
                                       footerBytes - dsindex::kTrailerBytes) -
                                       1));
         img[static_cast<size_t>(at)] = static_cast<Byte>(
             img[static_cast<size_t>(at)] ^
             static_cast<Byte>(1u << rng.uniformInt(0, 7)));
         return img;
       }},
      {"trailer-magic-overwritten",
       [&](ByteBuffer img) {
         for (size_t i = 0; i < 8; ++i) {
           img[img.size() - 8 + i] = Byte{0x00};
         }
         return img;
       }},
      {"offset-past-eof-valid-crc",
       [&](ByteBuffer img) {
         // Rewrite the trailer with a correct CRC over lying offsets.
         Byte t[24];
         encodeU64(fileBytes + 4096, t);        // footerOffset past EOF
         encodeU64(footerBytes - 28, t + 8);    // bodyBytes unchanged
         std::memcpy(t + 16, dsindex::kTrailerMagic, 8);
         Byte crc[4];
         encodeU32(crc32(std::span<const Byte>(t, 24)), crc);
         std::memcpy(img.data() + img.size() - 28, crc, 4);
         std::memcpy(img.data() + img.size() - 24, t, 24);
         return img;
       }},
      {"tiny-header-bytes-valid-crc",
       [&](ByteBuffer img) {
         // Zero entry 0's headerBytes (body prelude 24 bytes, then the
         // entry's u64 offset field) and recompute the body CRC: the lie
         // is checksum-clean and must be rejected structurally, never
         // used to size a header read or an 8-byte prefix span.
         const std::uint64_t bodyBytes = footerBytes - dsindex::kTrailerBytes;
         Byte* body = img.data() + footerOffset;
         encodeU32(0, body + 24 + 8);
         Byte crc[4];
         encodeU32(crc32(std::span<const Byte>(
                       body, static_cast<size_t>(bodyBytes - 4))),
                   crc);
         std::memcpy(body + bodyBytes - 4, crc, 4);
         return img;
       }},
      {"record-count-mismatch-valid-crc",
       [&](ByteBuffer img) {
         // Bump recordCount and recompute the body CRC: the checksum
         // passes, the decode must still reject the inconsistency.
         const std::uint64_t bodyBytes = footerBytes - dsindex::kTrailerBytes;
         Byte* body = img.data() + footerOffset;
         encodeU64(decodeU64(body + 16) + 1, body + 16);
         Byte crc[4];
         encodeU32(crc32(std::span<const Byte>(
                       body, static_cast<size_t>(bodyBytes - 4))),
                   crc);
         std::memcpy(body + bodyBytes - 4, crc, 4);
         return img;
       }},
  };

  for (const CaseDef& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string name = std::string("fuzz_") + c.name + ".ds";
    installImage(fs, name, c.corrupt(image));
    const std::vector<std::uint64_t> got =
        readAllShuffled(fs, name, rng, /*expectIndexed=*/false);
    EXPECT_EQ(got, expected) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FooterFuzz, ::testing::Range(0, 6));

TEST(FooterFuzz, ShortWriteTearsTheFooterAndReadersFallBack) {
  // A FaultPlan short-write clause on the footer append leaves a torn
  // footer on storage; readers must treat it as absent/corrupt and still
  // deliver every record by replay.
  pfs::Pfs probeFs = test::memFs();
  pfs::OpRecorder rec;
  probeFs.setObserveHook(rec.hook());
  writeReference(probeFs, "probe.ds");
  probeFs.setObserveHook(nullptr);

  // The footer append is the last write the stream issues: the highest
  // opIndex (the recorder's vector order races across nodes — opIndex is
  // the authoritative sequence).
  std::uint64_t footerOp = 0;
  std::uint64_t footerBytes = 0;
  for (const auto& op : rec.ops()) {
    if (op.kind == pfs::OpKind::Write && op.opIndex >= footerOp) {
      footerOp = op.opIndex;
      footerBytes = op.bytes;
    }
  }
  ASSERT_GT(footerBytes, dsindex::kTrailerBytes);

  pfs::Pfs fs = test::memFs();
  pfs::FaultPlan plan;
  plan.shortCompletionAtOp(footerOp, footerBytes / 2)
      .onlyKind(pfs::OpKind::Write);
  fs.setFaultHook(plan.hook());
  // The short write tears the footer append; the stream destructor treats
  // a failed footer as cosmetic (the record chain is already durable), so
  // the write itself completes.
  EXPECT_NO_THROW(writeReference(fs, "torn.ds"));
  fs.setFaultHook(nullptr);
  EXPECT_EQ(plan.firedCount(), 1u);

  // The record chain is intact; only the footer is torn.
  Rng rng(7);
  const std::vector<std::uint64_t> torn =
      readAllShuffled(fs, "torn.ds", rng, /*expectIndexed=*/false);

  pfs::Pfs cleanFs = test::memFs();
  writeReference(cleanFs, "clean.ds");
  Rng rng2(7);
  const std::vector<std::uint64_t> expected =
      readAllShuffled(cleanFs, "clean.ds", rng2, /*expectIndexed=*/true);
  EXPECT_EQ(torn, expected);
}

TEST(FooterFuzz, AppendOverwritesACorruptFooterInsteadOfBuryingIt) {
  pfs::Pfs fs = test::memFs();
  writeReference(fs, "ref.ds");
  ByteBuffer image = fileImage(fs, "ref.ds");
  const auto pristine = probeImage(image);
  ASSERT_EQ(pristine.status, dsindex::ProbeStatus::Valid) << pristine.reason;
  // Break the body magic: the footer is Corrupt, but the intact trailer
  // still pins the exact end of the record chain.
  image[static_cast<size_t>(pristine.footerOffset)] ^= Byte{0xFF};
  installImage(fs, "corrupt_append.ds", image);

  // Append two records: together they always outgrow the broken footer
  // region, so the rewritten tail extends past the old EOF and a plain
  // replay sees one clean chain — old records, then the appended ones,
  // never the buried footer bytes.
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.append = true;
    ds::OStream s(fs, &d, "corrupt_append.ds", so);
    for (int r = kRecords; r < kRecords + 2; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(i) + r * 1000.0;
      });
      s << g;
      s.write();
    }
  });

  // The old entries' geometry is unknown, so the file continues as a
  // plain (footer-less) chain.
  expectSequentialRecords(fs, "corrupt_append.ds", kRecords + 2,
                          /*expectIndexed=*/false);
}

TEST(FooterFuzz, AppendRefusesAFooterOfUnknownExtent) {
  pfs::Pfs fs = test::memFs();
  writeReference(fs, "ref.ds");
  ByteBuffer image = fileImage(fs, "ref.ds");
  // Break the trailer checksum: the footer is corrupt AND its extent is
  // untrusted, so appending anywhere could bury it mid-chain (hiding the
  // new records) or overwrite real records.
  image[image.size() - dsindex::kTrailerBytes] ^= Byte{0xFF};
  installImage(fs, "untrusted.ds", image);
  EXPECT_THROW(appendOneRecord(fs, "untrusted.ds", kRecords), FormatError);
  // The refused append left the file untouched: every original record is
  // still delivered by replay.
  Rng rng(11);
  readAllShuffled(fs, "untrusted.ds", rng, /*expectIndexed=*/false);
}

TEST(FooterFuzz, PendingInsertTeardownStillAppendsTheFooterAfterAppend) {
  // The ghost-record hazard: an append-mode stream adopts the footer, its
  // records start overwriting the old footer body, and the stream is then
  // destroyed on the warning path (inserts pending, never written). The
  // cursor is still record-aligned after the last write(), so the
  // destructor must append the grown footer anyway — otherwise the new
  // records sit behind footer remnants where no replay can see them.
  pfs::Pfs fs = test::memFs();
  const int base = 10;
  rt::Machine m(2);
  auto fill = [](coll::Collection<int>& g, int r) {
    g.forEachLocal([r](int& v, std::int64_t i) {
      v = static_cast<int>(r * 100 + i);
    });
  };
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "ghost.ds");
    for (int r = 0; r < base; ++r) {
      fill(g, r);
      s << g;
      s.write();
    }
  });
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::StreamOptions so;
    so.append = true;
    ds::OStream s(fs, &d, "ghost.ds", so);
    fill(g, base);
    s << g;
    s.write();  // durable record `base`
    fill(g, base + 1);
    s << g;  // inserted but never written: destructor warns, skips nothing
  });
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream in(fs, &d, "ghost.ds");
    EXPECT_TRUE(in.indexed());
    for (int r = 0; r <= base; ++r) {
      in.read();
      in >> g;
      std::int64_t bad = 0;
      g.forEachLocal([&](int& v, std::int64_t i) {
        if (v != static_cast<int>(r * 100 + i)) ++bad;
      });
      EXPECT_EQ(bad, 0) << "record " << r;
    }
    EXPECT_TRUE(in.atEnd());
  });
}

TEST(FooterFuzz, FirstAppendedWriteZeroesTheStaleTrailerBeforeRecordBytes) {
  // A crash (or failed write-behind teardown) between the first appended
  // record byte and the footer rewrite must not leave the old trailer
  // alive: it would keep pinning readers' chain end at the old footer
  // offset, silently hiding every appended record. The append session's
  // very first file write therefore zeroes the stale trailer.
  pfs::Pfs fs = test::memFs();
  writeReference(fs, "ref.ds");
  const ByteBuffer image = fileImage(fs, "ref.ds");
  const auto probe = probeImage(image);
  ASSERT_EQ(probe.status, dsindex::ProbeStatus::Valid) << probe.reason;
  const std::uint64_t trailerAt = image.size() - dsindex::kTrailerBytes;

  pfs::OpRecorder rec;
  fs.setObserveHook(rec.hook());
  appendOneRecord(fs, "ref.ds", kRecords);
  fs.setObserveHook(nullptr);

  bool sawZero = false;
  std::uint64_t zeroOp = 0;
  std::uint64_t firstRecordOp = ~std::uint64_t{0};
  for (const auto& op : rec.ops()) {
    if (op.kind != pfs::OpKind::Write) continue;
    if (op.offset == trailerAt && op.bytes == dsindex::kTrailerBytes) {
      sawZero = true;
      zeroOp = op.opIndex;
    } else if (op.offset == probe.footerOffset &&
               op.opIndex < firstRecordOp) {
      firstRecordOp = op.opIndex;
    }
  }
  ASSERT_TRUE(sawZero);
  ASSERT_NE(firstRecordOp, ~std::uint64_t{0});
  EXPECT_LT(zeroOp, firstRecordOp);

  // And the clean close still leaves a fully indexed file.
  expectSequentialRecords(fs, "ref.ds", kRecords + 1, /*expectIndexed=*/true);
}

}  // namespace
