// Seeded corruption battery over the index footer: every way the footer can
// be damaged — truncated, bit-flipped, magic overwritten, lying offsets,
// record-count mismatch, torn by a short write at append time — must
// degrade to chain replay that returns exactly the pristine records, with
// dsindex.fallbacks accounting for the degradation. Never a crash, never a
// misread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/dsindex/dsindex.h"
#include "src/dstream/dstream.h"
#include "src/pfs/fault_plan.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kRecords = 4;
constexpr std::int64_t kElements = 12;

/// Write the reference file: kRecords records of doubles, 2 nodes, block.
void writeReference(pfs::Pfs& fs, const std::string& name) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::OStream s(fs, &d, name);
    for (int r = 0; r < kRecords; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(i) + r * 1000.0;
      });
      s << g;
      s.write();
    }
  });
}

/// Raw byte image of a mem-backed pfs file.
ByteBuffer fileImage(pfs::Pfs& fs, const std::string& name) {
  ByteBuffer image;
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Read);
    image.resize(static_cast<size_t>(f->size()));
    f->readAt(node, 0, image);
  });
  return image;
}

/// Create `name` holding exactly `image`.
void installImage(pfs::Pfs& fs, const std::string& name,
                  const ByteBuffer& image) {
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Create);
    f->writeAt(node, 0, image);
  });
}

/// Read every record (shuffled by `rng`) via readRecord(k) and fingerprint
/// each; also assert the stream reports no usable index and that
/// dsindex.fallbacks ticked.
std::vector<std::uint64_t> readAllShuffled(pfs::Pfs& fs,
                                           const std::string& name,
                                           Rng& rng, bool expectIndexed) {
  std::vector<std::uint32_t> order(kRecords);
  for (int r = 0; r < kRecords; ++r) order[static_cast<size_t>(r)] = r;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(
                  rng.uniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }

  std::vector<std::atomic<std::uint64_t>> sums(kRecords);
  rt::Machine m(2);
  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElements, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream is(fs, &d, name);
    EXPECT_EQ(is.indexed(), expectIndexed);
    for (const std::uint32_t k : order) {
      is.readRecord(k);
      is >> g;
      g.forEachLocal([&](double& v, std::int64_t) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        sums[k].fetch_add(bits * 2654435761u);
      });
    }
  });
  m.detachObserver();
#if PCXX_OBS_ENABLED
  const auto snap = reg.snapshot();
  if (expectIndexed) {
    EXPECT_EQ(snap.merged.counter(obs::Counter::DsIndexFallbacks), 0u);
  } else {
    EXPECT_GE(snap.merged.counter(obs::Counter::DsIndexFallbacks), 1u);
  }
#endif
  std::vector<std::uint64_t> out(kRecords);
  for (int r = 0; r < kRecords; ++r) out[static_cast<size_t>(r)] = sums[r];
  return out;
}

class FooterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FooterFuzz, EveryCorruptionFallsBackToIdenticalBytes) {
  const int seed = GetParam();
  if (const char* only = std::getenv("PCXX_FOOTER_SEED")) {
    if (seed != std::atoi(only)) GTEST_SKIP() << "PCXX_FOOTER_SEED set";
  }
  SCOPED_TRACE(::testing::Message() << "repro: PCXX_FOOTER_SEED=" << seed
                                    << " ./footer_fuzz_test");
  Rng rng(0xF007ull * 2654435761ull + static_cast<std::uint64_t>(seed));

  pfs::Pfs fs = test::memFs();
  writeReference(fs, "ref.ds");
  const ByteBuffer image = fileImage(fs, "ref.ds");
  const std::uint64_t fileBytes = image.size();

  // Ground truth: the pristine indexed read.
  const std::vector<std::uint64_t> expected =
      readAllShuffled(fs, "ref.ds", rng, /*expectIndexed=*/true);

  const auto probe = dsindex::probeFooter(
      [&](std::uint64_t off, std::span<Byte> out) {
        if (off >= fileBytes) return std::uint64_t{0};
        const std::uint64_t n =
            std::min<std::uint64_t>(out.size(), fileBytes - off);
        std::memcpy(out.data(), image.data() + off, static_cast<size_t>(n));
        return n;
      },
      fileBytes, ds::kFileHeaderBytes);
  ASSERT_EQ(probe.status, dsindex::ProbeStatus::Valid) << probe.reason;
  const std::uint64_t footerOffset = probe.footerOffset;
  const std::uint64_t footerBytes = fileBytes - footerOffset;

  struct CaseDef {
    const char* name;
    std::function<ByteBuffer(ByteBuffer)> corrupt;
  };
  const std::vector<CaseDef> cases = {
      {"truncated-footer",
       [&](ByteBuffer img) {
         // Cut somewhere strictly inside the footer: trailer gone.
         const std::uint64_t keep =
             footerOffset + static_cast<std::uint64_t>(rng.uniformInt(
                                0, static_cast<std::int64_t>(footerBytes) -
                                       static_cast<std::int64_t>(
                                           dsindex::kTrailerBytes)));
         img.resize(static_cast<size_t>(keep));
         return img;
       }},
      {"bit-flipped-body",
       [&](ByteBuffer img) {
         // Flip one bit anywhere in the CRC-covered body.
         const std::uint64_t at =
             footerOffset + static_cast<std::uint64_t>(rng.uniformInt(
                                0, static_cast<std::int64_t>(
                                       footerBytes - dsindex::kTrailerBytes) -
                                       1));
         img[static_cast<size_t>(at)] = static_cast<Byte>(
             img[static_cast<size_t>(at)] ^
             static_cast<Byte>(1u << rng.uniformInt(0, 7)));
         return img;
       }},
      {"trailer-magic-overwritten",
       [&](ByteBuffer img) {
         for (size_t i = 0; i < 8; ++i) {
           img[img.size() - 8 + i] = Byte{0x00};
         }
         return img;
       }},
      {"offset-past-eof-valid-crc",
       [&](ByteBuffer img) {
         // Rewrite the trailer with a correct CRC over lying offsets.
         Byte t[24];
         encodeU64(fileBytes + 4096, t);        // footerOffset past EOF
         encodeU64(footerBytes - 28, t + 8);    // bodyBytes unchanged
         std::memcpy(t + 16, dsindex::kTrailerMagic, 8);
         Byte crc[4];
         encodeU32(crc32(std::span<const Byte>(t, 24)), crc);
         std::memcpy(img.data() + img.size() - 28, crc, 4);
         std::memcpy(img.data() + img.size() - 24, t, 24);
         return img;
       }},
      {"record-count-mismatch-valid-crc",
       [&](ByteBuffer img) {
         // Bump recordCount and recompute the body CRC: the checksum
         // passes, the decode must still reject the inconsistency.
         const std::uint64_t bodyBytes = footerBytes - dsindex::kTrailerBytes;
         Byte* body = img.data() + footerOffset;
         encodeU64(decodeU64(body + 16) + 1, body + 16);
         Byte crc[4];
         encodeU32(crc32(std::span<const Byte>(
                       body, static_cast<size_t>(bodyBytes - 4))),
                   crc);
         std::memcpy(body + bodyBytes - 4, crc, 4);
         return img;
       }},
  };

  for (const CaseDef& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string name = std::string("fuzz_") + c.name + ".ds";
    installImage(fs, name, c.corrupt(image));
    const std::vector<std::uint64_t> got =
        readAllShuffled(fs, name, rng, /*expectIndexed=*/false);
    EXPECT_EQ(got, expected) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FooterFuzz, ::testing::Range(0, 6));

TEST(FooterFuzz, ShortWriteTearsTheFooterAndReadersFallBack) {
  // A FaultPlan short-write clause on the footer append leaves a torn
  // footer on storage; readers must treat it as absent/corrupt and still
  // deliver every record by replay.
  pfs::Pfs probeFs = test::memFs();
  pfs::OpRecorder rec;
  probeFs.setObserveHook(rec.hook());
  writeReference(probeFs, "probe.ds");
  probeFs.setObserveHook(nullptr);

  // The footer append is the last write the stream issues: the highest
  // opIndex (the recorder's vector order races across nodes — opIndex is
  // the authoritative sequence).
  std::uint64_t footerOp = 0;
  std::uint64_t footerBytes = 0;
  for (const auto& op : rec.ops()) {
    if (op.kind == pfs::OpKind::Write && op.opIndex >= footerOp) {
      footerOp = op.opIndex;
      footerBytes = op.bytes;
    }
  }
  ASSERT_GT(footerBytes, dsindex::kTrailerBytes);

  pfs::Pfs fs = test::memFs();
  pfs::FaultPlan plan;
  plan.shortCompletionAtOp(footerOp, footerBytes / 2)
      .onlyKind(pfs::OpKind::Write);
  fs.setFaultHook(plan.hook());
  // The short write tears the footer append; the stream destructor treats
  // a failed footer as cosmetic (the record chain is already durable), so
  // the write itself completes.
  EXPECT_NO_THROW(writeReference(fs, "torn.ds"));
  fs.setFaultHook(nullptr);
  EXPECT_EQ(plan.firedCount(), 1u);

  // The record chain is intact; only the footer is torn.
  Rng rng(7);
  const std::vector<std::uint64_t> torn =
      readAllShuffled(fs, "torn.ds", rng, /*expectIndexed=*/false);

  pfs::Pfs cleanFs = test::memFs();
  writeReference(cleanFs, "clean.ds");
  Rng rng2(7);
  const std::vector<std::uint64_t> expected =
      readAllShuffled(cleanFs, "clean.ds", rng2, /*expectIndexed=*/true);
  EXPECT_EQ(torn, expected);
}

}  // namespace
