// Field projection (IStream::project): a projected read must deliver
// exactly the bytes a full read delivers for the projected fields — across
// interleave layouts and distributions, through the prefetch path, in
// salvage mode, and under an attached observer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/dstream/inspect.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct Cell {
  int count = 0;
  double density = 0.0;
};

/// Write one record interleaving three inserts: [0] a whole int collection,
/// [1] a double field, [2] an int field.
void writeMixed(pfs::Pfs& fs, const std::string& name, std::int64_t n,
                coll::DistKind kind, int records = 1,
                ds::StreamOptions so = {}) {
  coll::Processors P;
  coll::Distribution d(n, &P, kind);
  coll::Collection<int> whole(&d);
  coll::Collection<Cell> cells(&d);
  ds::OStream s(fs, &d, name, so);
  for (int r = 0; r < records; ++r) {
    whole.forEachLocal([r](int& v, std::int64_t i) {
      v = static_cast<int>(i * 3 + r);
    });
    cells.forEachLocal([r](Cell& c, std::int64_t i) {
      c.count = static_cast<int>(i + 100 * r);
      c.density = 0.25 * static_cast<double>(i) + r;
    });
    s << whole;
    s << cells.field(&Cell::density);
    s << cells.field(&Cell::count);
    s.write();
  }
}

TEST(Projection, SingleFieldMatchesFullExtract) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 14;
  for (auto kind : {coll::DistKind::Block, coll::DistKind::Cyclic}) {
    rt::Machine m(3);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(n, &P, kind);
      writeMixed(fs, "mix.ds", n, kind);

      // Full read: all three inserts.
      coll::Collection<int> fullWhole(&d);
      coll::Collection<Cell> fullCells(&d);
      {
        ds::IStream is(fs, &d, "mix.ds");
        is.read();
        is >> fullWhole;
        is >> fullCells.field(&Cell::density);
        is >> fullCells.field(&Cell::count);
      }

      // Projected read of just the density field (insert position 1).
      coll::Collection<Cell> projCells(&d);
      {
        ds::IStream is(fs, &d, "mix.ds");
        is.project({1});
        is.read();
        EXPECT_EQ(is.currentRecord().inserts.size(), 1u);
        is >> projCells.field(&Cell::density);
      }
      projCells.forEachLocal([&](Cell& c, std::int64_t g) {
        EXPECT_DOUBLE_EQ(c.density, fullCells.at(g).density) << g;
      });

      // Projected read of inserts {0, 2}, skipping the middle field.
      coll::Collection<int> projWhole(&d);
      coll::Collection<Cell> projCells2(&d);
      {
        ds::IStream is(fs, &d, "mix.ds");
        is.project({0, 2});
        is.read();
        EXPECT_EQ(is.currentRecord().inserts.size(), 2u);
        is >> projWhole;
        is >> projCells2.field(&Cell::count);
      }
      projWhole.forEachLocal([&](int& v, std::int64_t g) {
        EXPECT_EQ(v, fullWhole.at(g)) << g;
      });
      projCells2.forEachLocal([&](Cell& c, std::int64_t g) {
        EXPECT_EQ(c.count, fullCells.at(g).count) << g;
      });
    });
  }
}

TEST(Projection, WorksAcrossLayoutChange) {
  // Written Block on 4 nodes, read Cyclic: the strided read composes with
  // the redistribution exchange.
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 18;
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    writeMixed(fs, "relayout.ds", n, coll::DistKind::Block);
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Cyclic);
    coll::Collection<Cell> cells(&d);
    ds::IStream is(fs, &d, "relayout.ds");
    is.project({1});
    is.read();
    is >> cells.field(&Cell::density);
    cells.forEachLocal([](Cell& c, std::int64_t g) {
      EXPECT_DOUBLE_EQ(c.density, 0.25 * static_cast<double>(g));
    });
  });
}

TEST(Projection, PrefetchPathMatchesSynchronous) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 12;
  const int records = 4;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    writeMixed(fs, "pf.ds", n, coll::DistKind::Block, records);
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);

    auto readAll = [&](int prefetchDepth) {
      std::vector<double> got;
      ds::StreamOptions so;
      so.aioPrefetchDepth = prefetchDepth;
      ds::IStream is(fs, &d, "pf.ds", so);
      EXPECT_EQ(is.asyncActive(), prefetchDepth > 0);
      is.project({1});
      coll::Collection<Cell> cells(&d);
      for (int r = 0; r < records; ++r) {
        is.read();
        is >> cells.field(&Cell::density);
        cells.forEachLocal([&](Cell& c, std::int64_t) {
          got.push_back(c.density);
        });
      }
      return got;
    };

    const std::vector<double> sync = readAll(0);
    const std::vector<double> prefetched = readAll(2);
    EXPECT_EQ(sync, prefetched);
  });
}

TEST(Projection, SalvageSkipsDamagedRecordInBothPaths) {
  // Record 1's header is corrupted; salvage-mode reads deliver records 0
  // and 2 — projected exactly as a full read does.
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 10;
  rt::Machine m(2);
  std::uint64_t record1At = 0;
  m.run([&](rt::Node&) { writeMixed(fs, "dmg.ds", n, coll::DistKind::Block, 3); });
  {
    // Locate record 1 offline via the inspector.
    ByteBuffer image;
    rt::Machine probe(1);
    probe.run([&](rt::Node& node) {
      auto f = fs.open(node, "dmg.ds", pfs::OpenMode::Read);
      image.resize(static_cast<size_t>(f->size()));
      f->readAt(node, 0, image);
    });
    pfs::MemStorage storage;
    storage.writeAt(0, image);
    const ds::FileInfo info = ds::inspectFile(storage);
    ASSERT_EQ(info.records.size(), 3u);
    record1At = info.records[1].offset;
  }
  // Flip a byte inside record 1's header, past the magic+length prefix, so
  // the damage is a CRC mismatch rather than a framing error.
  fs.corruptByte("dmg.ds", record1At + 13, Byte{0xAB});

  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    ds::StreamOptions so;
    so.salvage = true;

    std::vector<int> fullCounts;
    {
      ds::IStream is(fs, &d, "dmg.ds", so);
      coll::Collection<int> whole(&d);
      coll::Collection<Cell> cells(&d);
      while (!is.atEnd()) {
        is.read();
        if (!is.hasRecord()) continue;
        is >> whole;
        is >> cells.field(&Cell::density);
        is >> cells.field(&Cell::count);
        cells.forEachLocal([&](Cell& c, std::int64_t) {
          fullCounts.push_back(c.count);
        });
      }
      EXPECT_EQ(is.salvageReport().recordsLost, 1u);
    }

    std::vector<int> projCounts;
    {
      ds::IStream is(fs, &d, "dmg.ds", so);
      is.project({2});
      coll::Collection<Cell> cells(&d);
      while (!is.atEnd()) {
        is.read();
        if (!is.hasRecord()) continue;
        is >> cells.field(&Cell::count);
        cells.forEachLocal([&](Cell& c, std::int64_t) {
          projCounts.push_back(c.count);
        });
      }
      EXPECT_EQ(is.salvageReport().recordsLost, 1u);
    }
    EXPECT_EQ(projCounts, fullCounts);
  });
}

TEST(Projection, ObserverCountsProjectedRecords) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 8;
  rt::Machine m(2);
  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    writeMixed(fs, "obs.ds", n, coll::DistKind::Block, 2);
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<Cell> cells(&d);
    ds::IStream is(fs, &d, "obs.ds");
    is.project({1});
    for (int r = 0; r < 2; ++r) {
      is.read();
      is >> cells.field(&Cell::density);
      cells.forEachLocal([&, r](Cell& c, std::int64_t g) {
        if (c.density != 0.25 * static_cast<double>(g) + r) bad.fetch_add(1);
      });
    }
  });
  m.detachObserver();
  EXPECT_EQ(bad.load(), 0);
#if PCXX_OBS_ENABLED
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.merged.counter(obs::Counter::DsIndexProjections), 4u);
#endif
}

struct Var {
  int n = 0;
  double* data = nullptr;
  ~Var() { delete[] data; }
  Var() = default;
  Var(const Var&) = delete;
  Var& operator=(const Var&) = delete;
};

declareStreamInserter(Var& e) {
  s << e.n;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(Var& e) {
  s >> e.n;
  s >> pcxx::ds::array(e.data, e.n);
}

TEST(Projection, VariableSizeFieldRejected) {
  // Inserting a variable-size element before (or at) a projected index has
  // no fixed per-element stride — project() must refuse at read time.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  EXPECT_THROW(
      m.run([&](rt::Node&) {
        coll::Processors P;
        coll::Distribution d(6, &P, coll::DistKind::Block);
        coll::Collection<Var> g(&d);
        g.forEachLocal([](Var& e, std::int64_t i) {
          e.n = static_cast<int>(i % 3);
          delete[] e.data;
          e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
          for (int k = 0; k < e.n; ++k) e.data[k] = 1.0;
        });
        {
          ds::OStream s(fs, &d, "var.ds");
          s << g.field(&Var::n);
          s << g;  // variable-size whole-element insert
          s.write();
        }
        ds::IStream is(fs, &d, "var.ds");
        is.project({1});  // the variable insert itself
        is.read();
      }),
      UsageError);

  // Projecting only the fixed prefix of the same file is legal.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<Var> g(&d);
    ds::IStream is(fs, &d, "var.ds");
    is.project({0});
    is.read();
    is >> g.field(&Var::n);
    g.forEachLocal([](Var& e, std::int64_t i) {
      EXPECT_EQ(e.n, static_cast<int>(i % 3));
    });
  });
}

}  // namespace
