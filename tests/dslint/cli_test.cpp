// Golden-output tests for the dslint CLI over tests/dslint/fixtures/, plus
// the regression guarantee that this repository's own client code (the
// examples and the SCF harness) lints clean.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "tests/common/json_check.h"

#ifndef PCXX_DSLINT_PATH
#error "PCXX_DSLINT_PATH must be defined by the build"
#endif
#ifndef PCXX_REPO_ROOT
#error "PCXX_REPO_ROOT must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

const fs::path kFixtures =
    fs::path(PCXX_REPO_ROOT) / "tests" / "dslint" / "fixtures";

std::pair<int, std::string> runTool(const std::string& args) {
  std::string outName = "pcxx_dslint_";
  outName.append(std::to_string(::getpid())).append(".out");
  const fs::path outPath = fs::temp_directory_path() / outName;
  std::string cmd = PCXX_DSLINT_PATH;
  cmd.append(" ").append(args).append(" > ").append(outPath.string())
      .append(" 2>&1");
  const int rc = std::system(cmd.c_str());
  std::ifstream in(outPath);
  std::ostringstream ss;
  ss << in.rdbuf();
  fs::remove(outPath);
  return {WEXITSTATUS(rc), ss.str()};
}

/// Parse "path:line:col: sev: msg [DSxxx]" lines into (id, line) pairs.
std::multiset<std::pair<std::string, int>> parseDiags(const std::string& out) {
  std::multiset<std::pair<std::string, int>> got;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    const size_t open = line.rfind(" [DS");
    if (open == std::string::npos || line.back() != ']') continue;
    const std::string id = line.substr(open + 2, line.size() - open - 3);
    // Line number: second ':'-separated field.
    const size_t c1 = line.find(':');
    if (c1 == std::string::npos) continue;
    const size_t c2 = line.find(':', c1 + 1);
    if (c2 == std::string::npos) continue;
    got.emplace(id, std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str()));
  }
  return got;
}

std::multiset<std::pair<std::string, int>> readExpected(const fs::path& path) {
  std::multiset<std::pair<std::string, int>> want;
  std::ifstream in(path);
  std::string id;
  int line = 0;
  while (in >> id >> line) want.emplace(id, line);
  return want;
}

std::string describe(const std::multiset<std::pair<std::string, int>>& set) {
  std::ostringstream ss;
  for (const auto& [id, line] : set) ss << id << ":" << line << " ";
  return ss.str();
}

TEST(DslintCli, EveryBadFixtureMatchesItsGolden) {
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(kFixtures)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 8 || name.substr(name.size() - 8) != "_bad.cpp") {
      continue;
    }
    const fs::path expected =
        entry.path().parent_path() /
        (name.substr(0, name.size() - 4) + ".expected");
    ASSERT_TRUE(fs::exists(expected)) << "missing golden for " << name;
    auto [rc, out] = runTool(entry.path().string());
    EXPECT_EQ(rc, 1) << name << ": " << out;
    EXPECT_EQ(parseDiags(out), readExpected(expected))
        << name << "\n got: " << describe(parseDiags(out))
        << "\nwant: " << describe(readExpected(expected)) << "\nraw:\n"
        << out;
    ++checked;
  }
  // One bad fixture per diagnostic ID (DS001, DS101..DS108, DS201..DS203,
  // DS301, DS401, DS402, DS501..DS503) plus the loop-carried regression.
  EXPECT_GE(checked, 19);
}

TEST(DslintCli, EveryGoodFixtureIsClean) {
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(kFixtures)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.substr(name.size() - 9) != "_good.cpp") {
      continue;
    }
    auto [rc, out] = runTool(entry.path().string());
    EXPECT_EQ(rc, 0) << name << " should lint clean but printed:\n" << out;
    EXPECT_TRUE(out.empty()) << name << ":\n" << out;
    ++checked;
  }
  EXPECT_GE(checked, 19);
}

TEST(DslintCli, RepositoryClientCodeLintsClean) {
  // The examples and the SCF harness are the analyzer's false-positive
  // budget: every construct they use must stay diagnostic-free.
  std::string files;
  for (const char* dir : {"examples", "src/scf", "src/dstream",
                          "src/collection"}) {
    for (const auto& entry :
         fs::directory_iterator(fs::path(PCXX_REPO_ROOT) / dir)) {
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".h") {
        files.append(" ").append(entry.path().string());
      }
    }
  }
  auto [rc, out] = runTool(files);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_TRUE(out.empty()) << out;
}

TEST(DslintCli, JsonModeEmitsMachineReadableOutput) {
  auto [rc, out] = runTool("--json " + (kFixtures / "ds104_bad.cpp").string());
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("\"id\":\"DS104\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"count\":1"), std::string::npos) << out;
}

TEST(DslintCli, FormatJsonIsAnAliasForJsonFlag) {
  auto [rc, out] =
      runTool("--format=json " + (kFixtures / "ds104_bad.cpp").string());
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("\"id\":\"DS104\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"count\":1"), std::string::npos) << out;
}

TEST(DslintCli, UnknownFormatExitsTwo) {
  auto [rc, out] =
      runTool("--format=xml " + (kFixtures / "ds104_bad.cpp").string());
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("unknown --format"), std::string::npos) << out;
}

TEST(DslintCli, SarifOutputIsValidJsonWithRulesAndRegions) {
  auto [rc, out] =
      runTool("--format=sarif " + (kFixtures / "ds104_bad.cpp").string());
  EXPECT_EQ(rc, 1);
  EXPECT_TRUE(pcxx::test::JsonChecker::valid(out)) << out;
  EXPECT_NE(out.find("\"version\":\"2.1.0\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"dslint\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ruleId\":\"DS104\""), std::string::npos) << out;
  // ds104_bad.cpp's double close sits at line 9, column 7 (the method
  // name is the diagnostic anchor).
  EXPECT_NE(out.find("\"startLine\":9"), std::string::npos) << out;
  EXPECT_NE(out.find("\"startColumn\":7"), std::string::npos) << out;
}

TEST(DslintCli, SarifOnCleanInputHasEmptyResultsAndExitZero) {
  auto [rc, out] =
      runTool("--format=sarif " + (kFixtures / "ds104_good.cpp").string());
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(pcxx::test::JsonChecker::valid(out)) << out;
  EXPECT_NE(out.find("\"results\":[]"), std::string::npos) << out;
}

TEST(DslintCli, BaselineSuppressesKnownFindings) {
  const fs::path baseline =
      fs::temp_directory_path() /
      ("pcxx_dslint_baseline_" + std::to_string(::getpid()) + ".txt");
  std::ofstream(baseline) << "# accepted legacy finding\n"
                          << "DS104 ds104_bad.cpp:9\n";
  auto [rc, out] = runTool("--baseline " + baseline.string() + " " +
                           (kFixtures / "ds104_bad.cpp").string());
  fs::remove(baseline);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_TRUE(out.empty()) << out;
}

TEST(DslintCli, MissingBaselineFileExitsTwo) {
  auto [rc, out] = runTool("--baseline /nonexistent/base.txt " +
                           (kFixtures / "ds104_bad.cpp").string());
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("baseline"), std::string::npos) << out;
}

TEST(DslintCli, StrictModeNotesEscapesOtherwiseSilent) {
  const std::string fixture = (kFixtures / "strict_escape.cpp").string();
  auto [rcPlain, outPlain] = runTool(fixture);
  EXPECT_EQ(rcPlain, 0) << outPlain;
  EXPECT_TRUE(outPlain.empty()) << outPlain;
  auto [rcStrict, outStrict] = runTool("--strict " + fixture);
  EXPECT_EQ(rcStrict, 1);
  EXPECT_NE(outStrict.find("[DS109]"), std::string::npos) << outStrict;
}

TEST(DslintCli, MultipleFilesAggregateAndSort) {
  auto [rc, out] = runTool((kFixtures / "ds104_bad.cpp").string() + " " +
                           (kFixtures / "ds101_bad.cpp").string());
  EXPECT_EQ(rc, 1);
  // Sorted by file: ds101 first even though given second.
  const size_t p101 = out.find("[DS101]");
  const size_t p104 = out.find("[DS104]");
  ASSERT_NE(p101, std::string::npos) << out;
  ASSERT_NE(p104, std::string::npos) << out;
  EXPECT_LT(p101, p104);
}

TEST(DslintCli, MissingFileExitsTwo) {
  auto [rc, out] = runTool("/nonexistent/no_such_file.cpp");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("DS001"), std::string::npos) << out;
}

TEST(DslintCli, NoInputsExitsTwoWithUsage) {
  auto [rc, out] = runTool("");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("no input files"), std::string::npos) << out;
}

TEST(DslintCli, SkipsGeneratedJsonArtifacts) {
  // Benches drop trace/metrics .json files next to their sources; a glob
  // that sweeps them up must not produce diagnostics or I/O errors.
  const fs::path dir =
      fs::temp_directory_path() / ("pcxx_dslint_json_" +
                                   std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path artifact = dir / "trace.json";
  std::ofstream(artifact) << "{\"traceEvents\": []}\n";
  // Alongside a clean fixture: the artifact is ignored, the source linted.
  auto [rc, out] = runTool(artifact.string() + " " +
                           (kFixtures / "ds101_good.cpp").string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_TRUE(out.empty()) << out;
  // Alone: nothing left to analyze is a usage error, not a crash.
  auto [rcAlone, outAlone] = runTool(artifact.string());
  EXPECT_EQ(rcAlone, 2);
  EXPECT_NE(outAlone.find("skipped"), std::string::npos) << outAlone;
  fs::remove_all(dir);
}

}  // namespace
