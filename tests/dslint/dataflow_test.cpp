// Tests for the v2 dataflow engine: worklist fixpoint convergence,
// loop-carried must-errors, interprocedural summaries (DS108/DS109), and
// collective-divergence checks (DS501/DS502/DS503).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dslint/protocol.h"
#include "src/streamgen/lexer.h"

namespace {

using pcxx::dslint::DiagnosticEngine;
using pcxx::dslint::ProtocolOptions;

std::vector<std::string> idsOf(const std::string& source,
                               bool strict = false) {
  DiagnosticEngine diags;
  ProtocolOptions opts;
  opts.strict = strict;
  pcxx::dslint::analyzeProtocol(pcxx::sg::lex(source, "t.cpp"), diags, opts);
  diags.sort();
  std::vector<std::string> ids;
  for (const auto& d : diags.all()) ids.push_back(d.id);
  return ids;
}

// -- fixpoint convergence -----------------------------------------------------

TEST(DataflowTest, LoopCarriedCloseIsMustErrorOnSecondIteration) {
  // Iteration 1 is legal; iteration 2 inserts into a closed stream. Needs
  // the loop-carried view of the converged fixpoint.
  EXPECT_EQ(idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      for (int i = 0; i < n; ++i) {
        out << i;
        out.write();
        out.close();
      }
    }
  )"), (std::vector<std::string>{"DS105", "DS105", "DS104"}));
}

TEST(DataflowTest, LoopCarriedWriteStateIsClean) {
  // wrote-on-iteration->=1 is part of the carried state; must not trip
  // DS102/DS107.
  EXPECT_TRUE(idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      for (int i = 0; i < n; ++i) {
        out << i;
        out.write();
      }
      out.close();
    }
  )").empty());
}

TEST(DataflowTest, DeeplyNestedLoopsTerminateAndStayStable) {
  // 4-deep loop nest with branches: the worklist must reach a fixpoint,
  // and re-running the analysis must reproduce the same diagnostics.
  const std::string src = R"(
    void f(int n, bool b) {
      ds::OStream out("x");
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          while (b) {
            do {
              if (b) { out << 1; } else { out << 2; }
              out.write();
            } while (b);
          }
          if (b) { out << j; out.write(); }
        }
      }
      out << 0;
      out.write();
      out.close();
    }
  )";
  const std::vector<std::string> first = idsOf(src);
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(idsOf(src), first);
}

TEST(DataflowTest, NestedLoopCarriedErrorSurvivesDepth) {
  // The closing statement sits two loops deep; the carried view still
  // reaches it with the closed state.
  const std::vector<std::string> ids = idsOf(R"(
    void f(int n) {
      ds::IStream in("x");
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          in.close();
        }
      }
    }
  )");
  EXPECT_EQ(ids, (std::vector<std::string>{"DS104"}));
}

TEST(DataflowTest, PostLoopStateJoinsWithZeroTripPath) {
  // close() inside the loop is a definite double close once the loop
  // iterates twice (carried view: DS104) — but the use AFTER the loop is
  // NOT a must-error, because the zero-trip path leaves the stream open.
  EXPECT_EQ(idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      out << 1;
      out.write();
      for (int i = 0; i < n; ++i) {
        out.close();
      }
      out << 2;
      out.write();
    }
  )"), (std::vector<std::string>{"DS104"}));
}

// -- duplicate suppression ----------------------------------------------------

TEST(DataflowTest, DiagnosticsAreDeduplicatedAcrossViews) {
  // The erroring statement is inside a loop, so the joined, carried, and
  // first-iteration walks all visit it; the report must appear once.
  const std::vector<std::string> ids = idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      out << 1;
      out.write();
      out.close();
      for (int i = 0; i < n; ++i) {
        out << i;
      }
    }
  )");
  EXPECT_EQ(ids, (std::vector<std::string>{"DS105"}));
}

// -- interprocedural summaries ------------------------------------------------

TEST(DataflowTest, HelperEffectIsAppliedAtCallSite) {
  // The helper writes and closes; the caller's later close is a definite
  // double close — visible only if the call's effect is applied.
  EXPECT_EQ(idsOf(R"(
    void finish(ds::OStream& s) {
      s << 1;
      s.write();
      s.close();
    }
    void f() {
      ds::OStream out("x");
      finish(out);
      out.close();
    }
  )"), (std::vector<std::string>{"DS104"}));
}

TEST(DataflowTest, HelperViolationInEveryCallContextIsDS108) {
  EXPECT_EQ(idsOf(R"(
    void finish(ds::OStream& s) {
      s.close();
    }
    void f() {
      ds::OStream out("x");
      out << 1;
      out.write();
      out.close();
      finish(out);
    }
  )"), (std::vector<std::string>{"DS108"}));
}

TEST(DataflowTest, HelperCleanInContextIsNotReported) {
  EXPECT_TRUE(idsOf(R"(
    void finish(ds::OStream& s) {
      s.close();
    }
    void f() {
      ds::OStream out("x");
      out << 1;
      out.write();
      finish(out);
    }
  )").empty());
}

TEST(DataflowTest, HelperWrongDirectionIsDS108) {
  // An IStream passed where the helper performs write-mode operations.
  const std::vector<std::string> ids = idsOf(R"(
    void fill(ds::OStream& s) {
      s << 1;
      s.write();
    }
    void f() {
      ds::IStream in("x");
      fill(in);
    }
  )");
  EXPECT_EQ(ids, (std::vector<std::string>{"DS108"}));
}

TEST(DataflowTest, NamedLambdaHelperIsSummarized) {
  EXPECT_EQ(idsOf(R"(
    void f() {
      auto finish = [](ds::OStream& s) {
        s.close();
      };
      ds::OStream out("x");
      out << 1;
      out.write();
      out.close();
      finish(out);
    }
  )"), (std::vector<std::string>{"DS108"}));
}

TEST(DataflowTest, HelperUnconditionalViolationReportsAtBody) {
  // A read-mode call on the output parameter errs in every entry state:
  // reported once at the helper body (DS101), not re-reported as DS108 at
  // each call site.
  const std::vector<std::string> ids = idsOf(R"(
    void drain(ds::OStream& s) {
      s.read();
    }
    void f() {
      ds::OStream out("x");
      out << 1;
      out.write();
      drain(out);
      out.close();
    }
  )");
  EXPECT_EQ(ids, (std::vector<std::string>{"DS101"}));
}

TEST(DataflowTest, StrictModeNotesEscapes) {
  const std::string src = R"(
    void mystery(ds::OStream* s);
    void f() {
      ds::OStream out("x");
      out << 1;
      out.write();
      mystery(&out);
      out.close();
    }
  )";
  EXPECT_TRUE(idsOf(src).empty());
  EXPECT_EQ(idsOf(src, /*strict=*/true),
            (std::vector<std::string>{"DS109"}));
}

// -- collective divergence (DS5xx) --------------------------------------------

TEST(DataflowTest, CollectiveUnderNodeDependentBranchIsDS501) {
  EXPECT_EQ(idsOf(R"(
    void f(Node& node) {
      ds::OStream out("x");
      out << 1;
      out.write();
      if (node.id() == 0) {
        out.close();
      }
    }
  )"), (std::vector<std::string>{"DS501"}));
}

TEST(DataflowTest, NodeLocalWorkUnderNodeBranchIsClean) {
  EXPECT_TRUE(idsOf(R"(
    void f(Node& node) {
      ds::OStream out("x");
      out << 1;
      if (node.id() == 0) {
        out << 2;
      }
      out.write();
      out.close();
    }
  )").empty());
}

TEST(DataflowTest, SameCollectivesBothArmsIsClean) {
  EXPECT_TRUE(idsOf(R"(
    void f(Node& node) {
      ds::OStream out("x");
      if (node.id() == 0) {
        out << 1;
        out.write();
      } else {
        out << 2;
        out.write();
      }
      out.close();
    }
  )").empty());
}

TEST(DataflowTest, ReorderedCollectivesAcrossArmsIsDS502) {
  EXPECT_EQ(idsOf(R"(
    void f(Node& node) {
      ds::OStream a("a");
      ds::OStream b("b");
      if (node.id() == 0) {
        a << 1; a.write();
        b << 2; b.write();
      } else {
        b << 2; b.write();
        a << 1; a.write();
      }
      a.close();
      b.close();
    }
  )"), (std::vector<std::string>{"DS502"}));
}

TEST(DataflowTest, CollectiveInNodeDependentLoopIsDS503) {
  EXPECT_EQ(idsOf(R"(
    void f(Node& node) {
      ds::OStream out("x");
      for (int i = 0; i < node.id(); ++i) {
        out << i;
        out.write();
      }
      out << 0;
      out.write();
      out.close();
    }
  )"), (std::vector<std::string>{"DS503"}));
}

TEST(DataflowTest, NodeIndependentLoopCollectivesAreClean) {
  EXPECT_TRUE(idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      for (int i = 0; i < n; ++i) {
        out << i;
        out.write();
      }
      out.close();
    }
  )").empty());
}

TEST(DataflowTest, EarlyReturnOnNodeIdentityIsDS501) {
  // Node 0 returns before the collectives; the rest deadlock.
  EXPECT_EQ(idsOf(R"(
    void f(Node& node) {
      ds::OStream out("x");
      out << 1;
      out.write();
      if (node.id() == 0) {
        return;
      }
      out.close();
    }
  )"), (std::vector<std::string>{"DS501"}));
}

TEST(DataflowTest, ThisNodeAliasIsRecognizedAsNodeDependent) {
  EXPECT_EQ(idsOf(R"(
    void f(int thisNode) {
      ds::OStream out("x");
      out << 1;
      out.write();
      if (thisNode == 0) {
        out.close();
      }
    }
  )"), (std::vector<std::string>{"DS501"}));
}

TEST(DataflowTest, CollectivePerformingHelperUnderNodeBranchIsDS501) {
  // The collective hides inside a summarized helper; the divergence check
  // must see through the call.
  EXPECT_EQ(idsOf(R"(
    void flush(ds::OStream& s) {
      s << 1;
      s.write();
    }
    void f(Node& node) {
      ds::OStream out("x");
      if (node.id() == 0) {
        flush(out);
      }
      out << 2;
      out.write();
      out.close();
    }
  )"), (std::vector<std::string>{"DS501"}));
}

}  // namespace
