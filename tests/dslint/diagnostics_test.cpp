// Tests for the diagnostic engine: rendering, sorting, JSON output, and
// the shared position-formatting helpers.
#include <gtest/gtest.h>

#include "src/dslint/analyzer.h"
#include "src/dslint/diagnostics.h"
#include "src/util/srcpos.h"

namespace {

using pcxx::dslint::AnalyzerOptions;
using pcxx::dslint::DiagnosticEngine;
using pcxx::dslint::Severity;

TEST(SrcPosTest, LocStringOmitsMissingParts) {
  EXPECT_EQ(pcxx::locString("t.h", 3, 7), "t.h:3:7");
  EXPECT_EQ(pcxx::locString("t.h", 3, 0), "t.h:3");
  EXPECT_EQ(pcxx::locString("", 0, 0), "<source>");
}

TEST(SrcPosTest, FormatDiagnosticIsGccStyle) {
  EXPECT_EQ(pcxx::formatDiagnostic("t.h", 3, 7, "error", "bad token"),
            "t.h:3:7: error: bad token");
}

TEST(DiagnosticsTest, RenderIncludesIdTag) {
  DiagnosticEngine d;
  d.error("DS104", "a.cpp", 9, 3, "double close of d/stream 'out'");
  EXPECT_EQ(d.all()[0].render(),
            "a.cpp:9:3: error: double close of d/stream 'out' [DS104]");
}

TEST(DiagnosticsTest, SortOrdersByFileLineColId) {
  DiagnosticEngine d;
  d.error("DS105", "b.cpp", 2, 1, "m");
  d.error("DS104", "a.cpp", 9, 3, "m");
  d.error("DS102", "a.cpp", 4, 1, "m");
  d.sort();
  EXPECT_EQ(d.all()[0].id, "DS102");
  EXPECT_EQ(d.all()[1].id, "DS104");
  EXPECT_EQ(d.all()[2].id, "DS105");
}

TEST(DiagnosticsTest, JsonEscapesAndCounts) {
  DiagnosticEngine d;
  d.warning("DS107", "a\"b.cpp", 1, 2, "path with \"quotes\"\nand newline");
  const std::string json = d.renderJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
}

TEST(DiagnosticsTest, DuplicateAddsAreDroppedAtInsertion) {
  DiagnosticEngine d;
  d.error("DS104", "a.cpp", 9, 3, "double close");
  d.error("DS104", "a.cpp", 9, 3, "double close");
  d.error("DS104", "a.cpp", 9, 3, "same site, different wording");
  d.error("DS104", "a.cpp", 9, 4, "different column survives");
  d.error("DS105", "a.cpp", 9, 3, "different id survives");
  EXPECT_EQ(d.count(), 3u);
}

TEST(DiagnosticsTest, RuleCatalogCoversEveryFamilySorted) {
  const auto& rules = pcxx::dslint::ruleCatalog();
  ASSERT_GE(rules.size(), 19u);
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(std::string(rules[i - 1].id), std::string(rules[i].id));
  }
  bool sawDs108 = false, sawDs501 = false;
  for (const auto& r : rules) {
    if (std::string(r.id) == "DS108") sawDs108 = true;
    if (std::string(r.id) == "DS501") sawDs501 = true;
  }
  EXPECT_TRUE(sawDs108);
  EXPECT_TRUE(sawDs501);
}

TEST(DiagnosticsTest, SarifCarriesRulesResultsAndRegions) {
  DiagnosticEngine d;
  d.error("DS104", "src/a.cpp", 9, 3, "double close of d/stream \"out\"");
  d.warning("DS107", "src/b.cpp", 2, 1, "never wrote");
  const std::string sarif = d.renderSarif();
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"dslint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"DS104\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":9"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\":3"), std::string::npos);
  EXPECT_NE(sarif.find("\\\"out\\\""), std::string::npos);  // escaping
  // Every catalogued rule appears in the driver's rule list.
  for (const auto& r : pcxx::dslint::ruleCatalog()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(r.id) + "\""),
              std::string::npos)
        << r.id;
  }
}

TEST(DiagnosticsTest, BaselineSuppressesBySuffixAndLine) {
  DiagnosticEngine d;
  d.error("DS104", "/repo/src/a.cpp", 9, 3, "m");
  d.error("DS104", "/repo/src/a.cpp", 12, 3, "m");
  d.error("DS105", "/repo/src/b.cpp", 9, 3, "m");
  const size_t removed = d.applyBaseline(
      "# known findings\n"
      "DS104 src/a.cpp:9\n"
      "DS105 other.cpp:9  # wrong file, keeps b.cpp finding\n");
  EXPECT_EQ(removed, 1u);
  ASSERT_EQ(d.count(), 2u);
  EXPECT_EQ(d.all()[0].line, 12);
  EXPECT_EQ(d.all()[1].id, "DS105");
}

TEST(DiagnosticsTest, BaselineDoesNotMatchPartialPathComponents) {
  DiagnosticEngine d;
  d.error("DS104", "/repo/src/xa.cpp", 9, 3, "m");
  EXPECT_EQ(d.applyBaseline("DS104 a.cpp:9\n"), 0u);
  EXPECT_EQ(d.count(), 1u);
}

TEST(AnalyzerTest, UnlexableSourceYieldsDs001NotAThrow) {
  DiagnosticEngine d;
  pcxx::dslint::analyzeSource("const char* s = \"open\n", "t.cpp",
                              AnalyzerOptions{}, d);
  ASSERT_EQ(d.count(), 1u);
  EXPECT_EQ(d.all()[0].id, "DS001");
}

TEST(AnalyzerTest, AllTypesFlagsPointerInPlainStruct) {
  const std::string src = R"(
    struct Blob {
      int n;
      char* bytes;
    };
  )";
  DiagnosticEngine quiet;
  pcxx::dslint::analyzeSource(src, "t.h", AnalyzerOptions{}, quiet);
  EXPECT_TRUE(quiet.empty());  // no stream functions in sight: default off

  DiagnosticEngine loud;
  AnalyzerOptions all;
  all.allTypes = true;
  pcxx::dslint::analyzeSource(src, "t.h", all, loud);
  ASSERT_EQ(loud.count(), 1u);
  EXPECT_EQ(loud.all()[0].id, "DS301");
  EXPECT_EQ(loud.all()[0].line, 4);
}

TEST(AnalyzerTest, AnnotatedPointersAreClean) {
  DiagnosticEngine d;
  pcxx::dslint::analyzeSource(R"(
    struct Blob {
      int n;
      char* bytes;   // pcxx:size(n)
      void* handle;  // pcxx:skip
    };
  )", "t.h", AnalyzerOptions{.allTypes = true}, d);
  EXPECT_TRUE(d.empty());
}

}  // namespace
