// Tests for the diagnostic engine: rendering, sorting, JSON output, and
// the shared position-formatting helpers.
#include <gtest/gtest.h>

#include "src/dslint/analyzer.h"
#include "src/dslint/diagnostics.h"
#include "src/util/srcpos.h"

namespace {

using pcxx::dslint::AnalyzerOptions;
using pcxx::dslint::DiagnosticEngine;
using pcxx::dslint::Severity;

TEST(SrcPosTest, LocStringOmitsMissingParts) {
  EXPECT_EQ(pcxx::locString("t.h", 3, 7), "t.h:3:7");
  EXPECT_EQ(pcxx::locString("t.h", 3, 0), "t.h:3");
  EXPECT_EQ(pcxx::locString("", 0, 0), "<source>");
}

TEST(SrcPosTest, FormatDiagnosticIsGccStyle) {
  EXPECT_EQ(pcxx::formatDiagnostic("t.h", 3, 7, "error", "bad token"),
            "t.h:3:7: error: bad token");
}

TEST(DiagnosticsTest, RenderIncludesIdTag) {
  DiagnosticEngine d;
  d.error("DS104", "a.cpp", 9, 3, "double close of d/stream 'out'");
  EXPECT_EQ(d.all()[0].render(),
            "a.cpp:9:3: error: double close of d/stream 'out' [DS104]");
}

TEST(DiagnosticsTest, SortOrdersByFileLineColId) {
  DiagnosticEngine d;
  d.error("DS105", "b.cpp", 2, 1, "m");
  d.error("DS104", "a.cpp", 9, 3, "m");
  d.error("DS102", "a.cpp", 4, 1, "m");
  d.sort();
  EXPECT_EQ(d.all()[0].id, "DS102");
  EXPECT_EQ(d.all()[1].id, "DS104");
  EXPECT_EQ(d.all()[2].id, "DS105");
}

TEST(DiagnosticsTest, JsonEscapesAndCounts) {
  DiagnosticEngine d;
  d.warning("DS107", "a\"b.cpp", 1, 2, "path with \"quotes\"\nand newline");
  const std::string json = d.renderJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
}

TEST(AnalyzerTest, UnlexableSourceYieldsDs001NotAThrow) {
  DiagnosticEngine d;
  pcxx::dslint::analyzeSource("const char* s = \"open\n", "t.cpp",
                              AnalyzerOptions{}, d);
  ASSERT_EQ(d.count(), 1u);
  EXPECT_EQ(d.all()[0].id, "DS001");
}

TEST(AnalyzerTest, AllTypesFlagsPointerInPlainStruct) {
  const std::string src = R"(
    struct Blob {
      int n;
      char* bytes;
    };
  )";
  DiagnosticEngine quiet;
  pcxx::dslint::analyzeSource(src, "t.h", AnalyzerOptions{}, quiet);
  EXPECT_TRUE(quiet.empty());  // no stream functions in sight: default off

  DiagnosticEngine loud;
  AnalyzerOptions all;
  all.allTypes = true;
  pcxx::dslint::analyzeSource(src, "t.h", all, loud);
  ASSERT_EQ(loud.count(), 1u);
  EXPECT_EQ(loud.all()[0].id, "DS301");
  EXPECT_EQ(loud.all()[0].line, 4);
}

TEST(AnalyzerTest, AnnotatedPointersAreClean) {
  DiagnosticEngine d;
  pcxx::dslint::analyzeSource(R"(
    struct Blob {
      int n;
      char* bytes;   // pcxx:size(n)
      void* handle;  // pcxx:skip
    };
  )", "t.h", AnalyzerOptions{.allTypes = true}, d);
  EXPECT_TRUE(d.empty());
}

}  // namespace
