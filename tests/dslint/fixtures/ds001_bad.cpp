// Unterminated literal: the analyzer cannot lex this TU at all.
struct Broken {
  const char* name = "never closed
};
