// Lexes and parses cleanly; nothing stream-related at all.
struct Fine {
  int a = 0;
  double b = 1.0;
};
