// Write-mode call on an input stream / read-mode call on an output stream.
#include "dstream/dstream.h"

void consume() {
  pcxx::ds::IStream in("particles.ds");
  in.read();
  in.write();  // wrong direction
  in.close();
}
