// Direction-correct twin of ds101_bad.
#include "dstream/dstream.h"

void consume() {
  pcxx::ds::IStream in("particles.ds");
  in.read();
  int v = 0;
  in >> v;
  in.close();
}
