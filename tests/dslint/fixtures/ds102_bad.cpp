// write() with nothing inserted since the last record boundary.
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("empty.ds");
  out.write();  // nothing inserted yet
  out.close();
}
