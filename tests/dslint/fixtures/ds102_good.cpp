// Insert-before-write twin of ds102_bad; the insert happens in both arms
// of a branch, so the join still proves a pending insert.
#include "dstream/dstream.h"

void produce(bool fancy) {
  pcxx::ds::OStream out("records.ds");
  if (fancy) {
    out << 2.0;
  } else {
    out << 1.0;
  }
  out.write();
  out.close();
}
