// Extraction before read()/unsortedRead() selected a record.
#include "dstream/dstream.h"

void consume() {
  pcxx::ds::IStream in("particles.ds");
  double x = 0;
  in >> x;  // no record loaded yet
  in.close();
}
