// read-then-extract twin of ds103_bad, with the paper's sorted/unsorted
// choice: both arms of the branch load a record, so the join is safe.
#include "dstream/dstream.h"

void consume(bool sorted) {
  pcxx::ds::IStream in("particles.ds");
  if (sorted) {
    in.read();
  } else {
    in.unsortedRead();
  }
  double x = 0;
  in >> x;
  in.close();
}
