// Double close.
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  out.close();
  out.close();  // already closed
}
