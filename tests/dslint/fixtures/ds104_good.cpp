// Single-close twin of ds104_bad: close in only one branch is fine as
// long as no later use can see the closed state on every path.
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  out.close();
}
