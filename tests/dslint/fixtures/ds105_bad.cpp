// Use of a stream after close().
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  out.close();
  out << 2;  // stream is closed
}
