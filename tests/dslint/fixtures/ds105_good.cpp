// Twin of ds105_bad: all uses precede the close.
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out << 2;
  out.write();
  out.close();
}
