// Pending inserts discarded by close (never written to a record).
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out << 2;
  out.close();  // the two inserts are lost
}
