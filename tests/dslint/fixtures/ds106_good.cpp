// Loop twin of ds106_bad: each iteration writes what it inserted, so no
// pending data can reach the close on any path.
#include "dstream/dstream.h"

void produce(int n) {
  pcxx::ds::OStream out("records.ds");
  for (int i = 0; i < n; ++i) {
    out << i;
    out.write();
  }
  out.close();
}
