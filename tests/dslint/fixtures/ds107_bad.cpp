// Output stream opened and closed without ever writing a record.
#include "dstream/dstream.h"

void produce() {
  pcxx::ds::OStream out("empty.ds");
  out.close();  // zero records
}
