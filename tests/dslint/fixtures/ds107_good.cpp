// Twin of ds107_bad: a write in a loop body counts — the analysis cannot
// prove the loop runs, but DS107 only fires when NO path writes.
#include "dstream/dstream.h"

void produce(int n) {
  pcxx::ds::OStream out("records.ds");
  for (int i = 0; i < n; ++i) {
    out << i;
    out.write();
  }
  out.close();
}
