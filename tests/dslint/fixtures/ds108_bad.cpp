// Interprocedural: the helper closes its stream parameter, so calling it
// with a stream the caller already closed double-closes inside the helper.
#include "dstream/dstream.h"

void finish(pcxx::ds::OStream& s) {
  s.close();
}

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  out.close();
  finish(out);  // 'out' is already closed on entry
}
