// Interprocedural twin of ds108_bad: the same closing helper is fine when
// the caller hands over an open stream and never touches it afterwards.
#include "dstream/dstream.h"

void finish(pcxx::ds::OStream& s) {
  s.close();
}

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  finish(out);  // helper performs the close
}
