// Field order differs between inserter and extractor.
#include "dstream/element_io.h"

struct Particle {
  double x;
  double y;
};

declareStreamInserter(Particle& v) {
  s << v.x;
  s << v.y;
}

declareStreamExtractor(Particle& v) {
  s >> v.y;  // order swapped
  s >> v.x;
}
