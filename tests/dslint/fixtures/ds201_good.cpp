// Order-matched twin of ds201_bad.
#include "dstream/element_io.h"

struct Particle {
  double x;
  double y;
};

declareStreamInserter(Particle& v) {
  s << v.x;
  s << v.y;
}

declareStreamExtractor(Particle& v) {
  s >> v.x;
  s >> v.y;
}
