// Field count differs between inserter and extractor.
#include "dstream/element_io.h"

struct Sample {
  int id;
  double value;
  double weight;
};

declareStreamInserter(Sample& v) {
  s << v.id;
  s << v.value;
  s << v.weight;
}

declareStreamExtractor(Sample& v) {
  s >> v.id;
  s >> v.value;  // weight never extracted
}
