// Count-matched twin of ds202_bad. The extractor's temporaries and casts
// are opaque to the checker and must not count as fields.
#include "dstream/element_io.h"

struct Sample {
  int id;
  double value;
  double weight;
};

declareStreamInserter(Sample& v) {
  s << v.id;
  s << v.value;
  s << v.weight;
}

declareStreamExtractor(Sample& v) {
  s >> v.id;
  s >> v.value;
  s >> v.weight;
}
