// Array size expression differs between inserter and extractor.
#include "dstream/element_io.h"

struct Track {
  int count;
  int capacity;
  double* samples;  // pcxx:size(count)
};

declareStreamInserter(Track& v) {
  s << v.count;
  s << v.capacity;
  s << pcxx::ds::array(v.samples, v.count);
}

declareStreamExtractor(Track& v) {
  s >> v.count;
  s >> v.capacity;
  s >> pcxx::ds::array(v.samples, v.capacity);  // wrong extent
}
