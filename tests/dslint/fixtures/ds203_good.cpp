// Size-matched twin of ds203_bad; the parameter name differs between the
// two functions, which must not defeat the comparison.
#include "dstream/element_io.h"

struct Track {
  int count;
  int capacity;
  double* samples;  // pcxx:size(count)
};

declareStreamInserter(Track& out) {
  s << out.count;
  s << out.capacity;
  s << pcxx::ds::array(out.samples, out.count);
}

declareStreamExtractor(Track& in) {
  s >> in.count;
  s >> in.capacity;
  s >> pcxx::ds::array(in.samples, in.count);
}
