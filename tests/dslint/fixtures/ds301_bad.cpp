// Unannotated pointer field in a streamed type that the hand-written
// stream functions never handle: the raw address would be streamed.
#include "dstream/element_io.h"

struct Node {
  int key;
  char* label;  // no pcxx:size / pcxx:skip, not handled below
};

declareStreamInserter(Node& v) {
  s << v.key;
}

declareStreamExtractor(Node& v) {
  s >> v.key;
}
