// Twin of ds301_bad: one pointer is size-annotated, the other is covered
// by the hand-written functions, the third is explicitly skipped.
#include "dstream/element_io.h"

struct Node {
  int key;
  int len;
  char* label;    // pcxx:size(len)
  double* extra;  // handled by hand below
  void* handle;   // pcxx:skip
};

declareStreamInserter(Node& v) {
  s << v.key;
  s << v.len;
  s << pcxx::ds::array(v.label, v.len);
  s << pcxx::ds::array(v.extra, v.len);
}

declareStreamExtractor(Node& v) {
  s >> v.key;
  s >> v.len;
  s >> pcxx::ds::array(v.label, v.len);
  s >> pcxx::ds::array(v.extra, v.len);
}
