// Interleaved inserts of collections with differing layouts into one
// record (the stream itself declares no layout, so only the interleave
// conflict fires).
#include "collection/collection.h"
#include "dstream/dstream.h"

void dump(pcxx::rt::Dist& rows, pcxx::rt::Dist& cols, pcxx::rt::Align& a) {
  pcxx::coll::Collection<double> u(&rows, &a);
  pcxx::coll::Collection<double> v(&cols, &a);
  pcxx::ds::OStream out("fields.ds");
  out << u;
  out << v;  // different distribution in the same record
  out.write();
  out.close();
}
