// Aligned twin of ds401_bad: both collections share (dist, align), so
// interleaving them element-wise is exactly the paper's Figure 4 case.
#include "collection/collection.h"
#include "dstream/dstream.h"

void dump(pcxx::rt::Dist& rows, pcxx::rt::Align& a) {
  pcxx::coll::Collection<double> u(&rows, &a);
  pcxx::coll::Collection<double> v(&rows, &a);
  pcxx::ds::OStream out("fields.ds");
  out << u;
  out << v;
  out.write();
  out.close();
}
