// Collection layout differs from the layout the stream was declared with.
#include "collection/collection.h"
#include "dstream/dstream.h"

void dump(pcxx::rt::Dist& rows, pcxx::rt::Dist& cols, pcxx::rt::Align& a) {
  pcxx::coll::Collection<double> u(&cols, &a);
  pcxx::ds::OStream out("fields.ds", &rows, &a);
  out << u;  // (cols, a) into a (rows, a) stream
  out.write();
  out.close();
}
