// Matched twin of ds402_bad.
#include "collection/collection.h"
#include "dstream/dstream.h"

void dump(pcxx::rt::Dist& rows, pcxx::rt::Align& a) {
  pcxx::coll::Collection<double> u(&rows, &a);
  pcxx::ds::OStream out("fields.ds", &rows, &a);
  out << u;
  out.write();
  out.close();
}
