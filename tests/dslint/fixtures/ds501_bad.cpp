// Collective divergence: close() is a collective (every node must take
// part), but only node 0 executes it — the other nodes deadlock waiting.
#include "dstream/dstream.h"

void checkpoint(pcxx::coll::Node& node) {
  pcxx::ds::OStream out("ckpt.ds");
  out << 1;
  out.write();
  if (node.id() == 0) {
    out.close();  // collective on a node-dependent subset
  }
}
