// Node-dependent branching is fine as long as the collectives themselves
// are unconditional: inserts (<<) are node-local, so only node 0 staging
// extra data does not diverge — every node reaches write() and close().
#include "dstream/dstream.h"

void checkpoint(pcxx::coll::Node& node) {
  pcxx::ds::OStream out("ckpt.ds");
  out << 1;
  if (node.id() == 0) {
    out << 2;  // node-local staging, not a collective
  }
  out.write();
  out.close();
}
