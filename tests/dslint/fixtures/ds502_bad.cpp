// Collective divergence: both arms of a node-dependent branch run the
// same collectives but in opposite orders, so node 0 waits on 'a' while
// the rest wait on 'b'.
#include "dstream/dstream.h"

void exchange(pcxx::coll::Node& node) {
  pcxx::ds::OStream a("a.ds");
  pcxx::ds::OStream b("b.ds");
  if (node.id() == 0) {
    a << 1;
    a.write();
    b << 2;
    b.write();
  } else {
    b << 2;
    b.write();
    a << 1;
    a.write();
  }
  a.close();
  b.close();
}
