// Twin of ds502_bad: node-dependent branches may differ in node-local
// work as long as they issue the same collectives in the same order.
#include "dstream/dstream.h"

void exchange(pcxx::coll::Node& node) {
  pcxx::ds::OStream a("a.ds");
  pcxx::ds::OStream b("b.ds");
  if (node.id() == 0) {
    a << 1;
    a.write();
    b << 2;
    b.write();
  } else {
    a << 10;
    a.write();
    b << 20;
    b.write();
  }
  a.close();
  b.close();
}
