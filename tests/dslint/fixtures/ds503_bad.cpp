// Collective divergence: the loop's trip count depends on node identity,
// so nodes issue different numbers of collective write()s and deadlock.
#include "dstream/dstream.h"

void stage(pcxx::coll::Node& node) {
  pcxx::ds::OStream out("stage.ds");
  for (int i = 0; i < node.id(); ++i) {
    out << i;
    out.write();  // collective, executed node.id() times
  }
  out << 0;
  out.write();
  out.close();
}
