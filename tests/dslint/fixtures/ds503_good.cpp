// Twin of ds503_bad: collectives inside a loop are fine when the trip
// count is node-independent, and a node-dependent loop is fine when it
// performs no collectives.
#include "dstream/dstream.h"

void stage(pcxx::coll::Node& node, int n) {
  pcxx::ds::OStream out("stage.ds");
  for (int i = 0; i < n; ++i) {
    out << i;
    out.write();  // same trip count on every node
  }
  int local = 0;
  for (int i = 0; i < node.id(); ++i) {
    local += i;  // node-dependent loop, but no collectives inside
  }
  out << local;
  out.write();
  out.close();
}
