// Loop-carried protocol state: iteration 1 is legal, but close() inside
// the body means iteration 2 inserts into a closed stream. A single pass
// over the body misses this; the fixpoint's carried view catches it.
#include "dstream/dstream.h"

void produce(int n) {
  pcxx::ds::OStream out("records.ds");
  for (int i = 0; i < n; ++i) {
    out << i;
    out.write();
    out.close();  // iteration 2 sees a closed stream
  }
}
