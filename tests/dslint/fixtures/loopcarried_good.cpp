// Twin of loopcarried_bad: close once after the loop. The loop-carried
// state (wrote on iteration >= 1) must not trip any must-error.
#include "dstream/dstream.h"

void produce(int n) {
  pcxx::ds::OStream out("records.ds");
  for (int i = 0; i < n; ++i) {
    out << i;
    out.write();
  }
  out.close();
}
