// Repositioning with seekRecord() discards the loaded record: extraction
// before the next read() is the DS103 pattern again.
#include "dstream/dstream.h"

void consume() {
  pcxx::ds::IStream in("particles.ds");
  in.read();
  double x = 0;
  in >> x;
  in.seekRecord(3);
  in >> x;  // the seek discarded the record; nothing is loaded
  in.close();
}
