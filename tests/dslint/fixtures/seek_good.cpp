// Indexed repositioning done right: seekRecord() is followed by read()
// before extraction, and readRecord(k) loads the record itself.
#include "dstream/dstream.h"

void consume() {
  pcxx::ds::IStream in("particles.ds");
  in.seekRecord(2);
  in.read();
  double x = 0;
  in >> x;
  in.readRecord(5);
  in >> x;
  in.close();
}
