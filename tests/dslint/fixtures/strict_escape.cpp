// --strict fixture (deliberately not named *_bad/_good: it is only
// diagnosed under --strict, which the golden sweeps do not pass).
// Taking the stream's address hands it to code the analyzer cannot see,
// so tracking is dropped — DS109 notes where.
#include "dstream/dstream.h"

void mystery(pcxx::ds::OStream* s);

void produce() {
  pcxx::ds::OStream out("records.ds");
  out << 1;
  out.write();
  mystery(&out);  // escapes: protocol tracking ends here
  out.close();
}
