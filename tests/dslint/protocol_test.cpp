// Library-level tests for the D1/D4 protocol analysis: control-flow joins,
// loops, escapes, lambdas, and must-error reporting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dslint/protocol.h"
#include "src/streamgen/lexer.h"

namespace {

using pcxx::dslint::DiagnosticEngine;

std::vector<std::string> idsOf(const std::string& source) {
  DiagnosticEngine diags;
  pcxx::dslint::analyzeProtocol(pcxx::sg::lex(source, "t.cpp"), diags);
  diags.sort();
  std::vector<std::string> ids;
  for (const auto& d : diags.all()) ids.push_back(d.id);
  return ids;
}

TEST(ProtocolTest, CleanSequenceHasNoDiagnostics) {
  EXPECT_TRUE(idsOf(R"(
    void f() {
      pcxx::ds::OStream out("x");
      out << 1;
      out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, PaperAliasesAreRecognized) {
  EXPECT_EQ(idsOf(R"(
    void f() {
      oStream out("x");
      out.close();
    }
  )"), (std::vector<std::string>{"DS107"}));
}

TEST(ProtocolTest, DoubleCloseIsReported) {
  EXPECT_EQ(idsOf(R"(
    void f() {
      ds::OStream out("x");
      out << 1; out.write();
      out.close();
      out.close();
    }
  )"), (std::vector<std::string>{"DS104"}));
}

TEST(ProtocolTest, BranchWithInsertInBothArmsIsClean) {
  EXPECT_TRUE(idsOf(R"(
    void f(bool b) {
      ds::OStream out("x");
      if (b) { out << 1; } else { out << 2; }
      out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, MayErrorAfterJoinIsNotReported) {
  // Only one arm inserts: write() may be an error, but is not a MUST
  // error, so the conservative analysis stays quiet.
  EXPECT_TRUE(idsOf(R"(
    void f(bool b) {
      ds::OStream out("x");
      if (b) { out << 1; }
      out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, MustErrorAfterJoinIsReported) {
  // Neither arm inserts: every state reaching write() is empty.
  EXPECT_EQ(idsOf(R"(
    void f(bool b) {
      ds::OStream out("x");
      if (b) { int k = 0; (void)k; } else { int j = 1; (void)j; }
      out.write();
      out.close();
    }
  )"), (std::vector<std::string>{"DS102"}));
}

TEST(ProtocolTest, CloseInOneArmThenUseIsNotMustError) {
  // The stream may still be open on the else path; stays quiet.
  EXPECT_TRUE(idsOf(R"(
    void f(bool b) {
      ds::OStream out("x");
      out << 1; out.write();
      if (b) { out.close(); return; }
      out << 2; out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, LoopBodyJoinsWithZeroTripPath) {
  // A write inside the loop means the close may see zero records; DS107
  // must NOT fire (the loop may run), and neither must DS102.
  EXPECT_TRUE(idsOf(R"(
    void f(int n) {
      ds::OStream out("x");
      for (int i = 0; i < n; ++i) { out << i; out.write(); }
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, PipelineLoopWithSkipAndContinueIsClean) {
  // The shape of examples/pipeline_analysis.cpp: skipRecord + continue.
  EXPECT_TRUE(idsOf(R"(
    void f() {
      ds::IStream in("x");
      while (!in.atEnd()) {
        if (in.frame() % 2) { in.skipRecord(); continue; }
        in.read();
        double v; in >> v;
      }
      in.close();
    }
  )").empty());
}

TEST(ProtocolTest, SortedUnsortedBranchBothLoadARecord) {
  // The shape of scf::IoMethods: both arms select a record before >>.
  EXPECT_TRUE(idsOf(R"(
    void f(bool sorted) {
      ds::IStream in("x");
      if (sorted) in.read(); else in.unsortedRead();
      int v; in >> v;
      in.close();
    }
  )").empty());
}

TEST(ProtocolTest, LambdaBodiesAreAnalyzedInline) {
  // All example client code runs inside machine.run([&](rt::Node&){...}).
  EXPECT_EQ(idsOf(R"(
    void f(rt::Machine& machine) {
      machine.run([&](rt::Node& node) {
        ds::OStream out("x");
        out << 1; out.write();
        out.close();
        out.close();
      });
    }
  )"), (std::vector<std::string>{"DS104"}));
}

TEST(ProtocolTest, EscapedStreamIsNotDiagnosed) {
  // Passing the stream to unknown code by reference ends tracking.
  EXPECT_TRUE(idsOf(R"(
    void f() {
      ds::OStream out("x");
      helper(out);
      out.close();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, UnknownMethodIsABenignUse) {
  // Method calls the FSM does not know (atEnd(), frames(), ...) leave the
  // state unchanged; tracking continues and later bugs are still caught.
  EXPECT_EQ(idsOf(R"(
    void f() {
      ds::OStream out("x");
      out.exotic();
      out.close();
      out.close();
    }
  )"), (std::vector<std::string>{"DS107", "DS104"}));
}

TEST(ProtocolTest, DeadPathAfterReturnDoesNotPolluteJoin) {
  EXPECT_TRUE(idsOf(R"(
    int f(bool bad) {
      ds::OStream out("x");
      if (bad) { return 1; }
      out << 1; out.write();
      out.close();
      return 0;
    }
  )").empty());
}

TEST(ProtocolTest, EndOfScopeDiscardsPendingInserts) {
  EXPECT_EQ(idsOf(R"(
    void f() {
      {
        ds::OStream out("x");
        out << 1;
      }
    }
  )"), (std::vector<std::string>{"DS106"}));
}

TEST(ProtocolTest, RewindResetsTheRecordCursor) {
  EXPECT_EQ(idsOf(R"(
    void f() {
      ds::IStream in("x");
      in.read();
      int v; in >> v;
      in.rewind();
      in >> v;
      in.close();
    }
  )"), (std::vector<std::string>{"DS103"}));
}

TEST(ProtocolTest, OtherTypesNamedLikeStreamsAreIgnored) {
  // std::ifstream is not a d/stream; no protocol applies.
  EXPECT_TRUE(idsOf(R"(
    void f() {
      std::ifstream in("x");
      in.close();
      in.close();
    }
  )").empty());
}

TEST(ProtocolTest, InterleaveConflictRequiresKnownLayouts) {
  // A non-trivial ctor argument (&layout.distribution()) makes the layout
  // unknown: no D4 diagnostics, conservative silence.
  EXPECT_TRUE(idsOf(R"(
    void f(Layout& layout, rt::Align& a) {
      coll::Collection<double> g(&layout.distribution(), &a);
      coll::Collection<double> h(&layout.distribution(), &a);
      ds::OStream out("x");
      out << g; out << h;
      out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, InterleaveConflictWithKnownLayouts) {
  EXPECT_EQ(idsOf(R"(
    void f(rt::Dist& d1, rt::Dist& d2, rt::Align& a) {
      coll::Collection<double> g(&d1, &a);
      coll::Collection<double> h(&d2, &a);
      ds::OStream out("x");
      out << g; out << h;
      out.write();
      out.close();
    }
  )"), (std::vector<std::string>{"DS401"}));
}

TEST(ProtocolTest, WriteClearsInterleaveWindow) {
  // Different layouts in different records are fine.
  EXPECT_TRUE(idsOf(R"(
    void f(rt::Dist& d1, rt::Dist& d2, rt::Align& a) {
      coll::Collection<double> g(&d1, &a);
      coll::Collection<double> h(&d2, &a);
      ds::OStream out("x");
      out << g; out.write();
      out << h; out.write();
      out.close();
    }
  )").empty());
}

TEST(ProtocolTest, SalvageReadLoopViaOptionsVariableIsClean) {
  // The canonical salvage loop: read() may consume damage and land at end
  // of file with no record, so the body bails on !hasRecord() before
  // extracting. The analyzer must not flag the extraction.
  EXPECT_TRUE(idsOf(R"(
    void f(pfs::Pfs& fs, coll::Dist& d, coll::Collection<double>& g) {
      ds::StreamOptions so;
      so.salvage = true;
      ds::IStream in(fs, &d, "x", so);
      while (!in.atEnd()) {
        in.read();
        if (!in.hasRecord()) break;
        in >> g;
      }
      in.close();
    }
  )").empty());
}

TEST(ProtocolTest, SalvageReadLoopViaInlineOptionsIsClean) {
  EXPECT_TRUE(idsOf(R"(
    void f(pfs::Pfs& fs, coll::Dist& d, coll::Collection<double>& g) {
      ds::IStream in(fs, &d, "x", ds::StreamOptions{.salvage = true});
      in.read();
      in >> g;
      in.close();
    }
  )").empty());
}

TEST(ProtocolTest, SalvageDoesNotExcuseExtractBeforeAnyRead) {
  // Salvage relaxes the state only *after* a read; an extraction with no
  // read at all is still a definite DS103.
  EXPECT_EQ(idsOf(R"(
    void f(pfs::Pfs& fs, coll::Dist& d, coll::Collection<double>& g) {
      ds::StreamOptions so;
      so.salvage = true;
      ds::IStream in(fs, &d, "x", so);
      in >> g;
      in.close();
    }
  )"), (std::vector<std::string>{"DS103"}));
}

}  // namespace
