// Library-level tests for the D2 symmetry pass: body normalization, opaque
// filtering, parameter-name normalization, referenced-field collection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dslint/symmetry.h"
#include "src/streamgen/lexer.h"

namespace {

using pcxx::dslint::DiagnosticEngine;
using pcxx::dslint::StreamFns;
using pcxx::dslint::StreamOp;

std::map<std::string, StreamFns> collect(const std::string& source) {
  return pcxx::dslint::collectStreamFns(pcxx::sg::lex(source, "t.cpp"));
}

std::vector<std::string> idsOf(const std::string& source) {
  DiagnosticEngine diags;
  pcxx::dslint::checkSymmetry(collect(source), "t.cpp", diags);
  diags.sort();
  std::vector<std::string> ids;
  for (const auto& d : diags.all()) ids.push_back(d.id);
  return ids;
}

TEST(SymmetryTest, CollectsBothFunctionsKeyedByType) {
  auto fns = collect(R"(
    declareStreamInserter(Particle& v) { s << v.x; s << v.y; }
    declareStreamExtractor(Particle& v) { s >> v.x; s >> v.y; }
  )");
  ASSERT_EQ(fns.count("Particle"), 1u);
  EXPECT_TRUE(fns["Particle"].hasInserter);
  EXPECT_TRUE(fns["Particle"].hasExtractor);
  ASSERT_EQ(fns["Particle"].inserterOps.size(), 2u);
  EXPECT_EQ(fns["Particle"].inserterOps[0].field, "x");
  EXPECT_EQ(fns["Particle"].inserterOps[1].field, "y");
}

TEST(SymmetryTest, QualifiedTypeNameUsesUnqualifiedKey) {
  auto fns = collect(R"(
    declareStreamInserter(scf::Segment& v) { s << v.id; }
  )");
  EXPECT_EQ(fns.count("Segment"), 1u);
}

TEST(SymmetryTest, ChainedOperatorsCountEachOperand) {
  auto fns = collect(R"(
    declareStreamInserter(P& v) { s << v.a << v.b << v.c; }
  )");
  ASSERT_EQ(fns["P"].inserterOps.size(), 3u);
  EXPECT_EQ(fns["P"].inserterOps[2].field, "c");
}

TEST(SymmetryTest, ArrayOperandNormalizesSizeExpr) {
  auto fns = collect(R"(
    declareStreamInserter(T& out) {
      s << out.n;
      s << pcxx::ds::array(out.data, out.n * 2);
    }
  )");
  ASSERT_EQ(fns["T"].inserterOps.size(), 2u);
  const StreamOp& op = fns["T"].inserterOps[1];
  EXPECT_EQ(op.kind, StreamOp::Kind::Array);
  EXPECT_EQ(op.field, "data");
  // The parameter name is normalized to "@" so differently named
  // parameters in the two functions still compare equal.
  EXPECT_EQ(op.sizeExpr, "@.n*2");
}

TEST(SymmetryTest, CastsAndLocalsAreOpaque) {
  auto fns = collect(R"(
    declareStreamInserter(Node& v) {
      int flag = v.child ? 1 : 0;
      s << v.key;
      s << flag;
      s << static_cast<int>(v.depth);
    }
  )");
  ASSERT_EQ(fns["Node"].inserterOps.size(), 3u);
  EXPECT_EQ(fns["Node"].inserterOps[0].kind, StreamOp::Kind::Field);
  EXPECT_EQ(fns["Node"].inserterOps[1].kind, StreamOp::Kind::Opaque);
  EXPECT_EQ(fns["Node"].inserterOps[2].kind, StreamOp::Kind::Opaque);
}

TEST(SymmetryTest, OpaqueOpsAreFilteredFromComparison) {
  // Presence-flag idiom (examples/adaptive_tree.cpp): locals and casts on
  // both sides must not trip the order/count checks.
  EXPECT_TRUE(idsOf(R"(
    declareStreamInserter(Node& v) {
      int flag = v.child ? 1 : 0;
      s << flag;
      s << v.key;
    }
    declareStreamExtractor(Node& v) {
      int flag = 0;
      s >> flag;
      s >> v.key;
    }
  )").empty());
}

TEST(SymmetryTest, ReferencedFieldsIncludeEveryMention) {
  auto fns = collect(R"(
    declareStreamInserter(Node& v) {
      int flag = v.child ? 1 : 0;
      s << flag;
      s << v.key;
    }
  )");
  EXPECT_EQ(fns["Node"].referencedFields.count("child"), 1u);
  EXPECT_EQ(fns["Node"].referencedFields.count("key"), 1u);
}

TEST(SymmetryTest, OrderMismatchReportsDs201) {
  EXPECT_EQ(idsOf(R"(
    declareStreamInserter(P& v) { s << v.a; s << v.b; }
    declareStreamExtractor(P& v) { s >> v.b; s >> v.a; }
  )"), (std::vector<std::string>{"DS201"}));
}

TEST(SymmetryTest, CountMismatchReportsDs202) {
  EXPECT_EQ(idsOf(R"(
    declareStreamInserter(P& v) { s << v.a; s << v.b; }
    declareStreamExtractor(P& v) { s >> v.a; }
  )"), (std::vector<std::string>{"DS202"}));
}

TEST(SymmetryTest, SizeExprMismatchReportsDs203) {
  EXPECT_EQ(idsOf(R"(
    declareStreamInserter(P& v) { s << v.n; s << ds::array(v.p, v.n); }
    declareStreamExtractor(P& v) { s >> v.n; s >> ds::array(v.p, v.cap); }
  )"), (std::vector<std::string>{"DS203"}));
}

TEST(SymmetryTest, DifferentParameterNamesCompareEqual) {
  EXPECT_TRUE(idsOf(R"(
    declareStreamInserter(P& out) { s << out.n; s << ds::array(out.p, out.n); }
    declareStreamExtractor(P& in) { s >> in.n; s >> ds::array(in.p, in.n); }
  )").empty());
}

TEST(SymmetryTest, InserterOnlyTypeIsNotChecked) {
  EXPECT_TRUE(idsOf(R"(
    declareStreamInserter(P& v) { s << v.a; }
  )").empty());
}

}  // namespace
