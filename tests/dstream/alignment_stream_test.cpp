// d/streams over non-identity alignments, including negative strides (a
// reversed collection laid onto the distribution template) and offset
// alignments — the full generality of the paper's HPF-style ALIGN.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(AlignmentStreams, StridedAlignmentRoundTrip) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(24, &P, coll::DistKind::Block);
    coll::Align a(12, 2, 0);  // elements on even template slots
    coll::Collection<double> g(&d, &a);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i) * 3.0;
    });
    ds::OStream s(fs, &d, &a, "strided");
    s << g;
    s.write();
    coll::Collection<double> h(&d, &a);
    ds::IStream in(fs, &d, &a, "strided");
    in.read();
    in >> h;
    h.forEachLocal([](double& v, std::int64_t i) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(i) * 3.0);
    });
  });
}

TEST(AlignmentStreams, NegativeStrideReversesOwnership) {
  // align(i) = -1*i + 11 maps element 0 to slot 11 (last node) and element
  // 11 to slot 0 (node 0): a reversed layout.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Block);
    coll::Align a(12, "[ALIGN(x[i], d[-1*i+11])]");
    coll::Collection<int> g(&d, &a);
    // Element 0 lives on the LAST node under this alignment.
    if (g.owns(0)) {
      EXPECT_EQ(node.id(), node.nprocs() - 1);
    }
    if (g.owns(11)) {
      EXPECT_EQ(node.id(), 0);
    }
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    ds::OStream s(fs, &d, &a, "reversed");
    s << g;
    s.write();

    coll::Collection<int> h(&d, &a);
    ds::IStream in(fs, &d, &a, "reversed");
    in.read();
    in >> h;
    h.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
  });
}

TEST(AlignmentStreams, WriteAlignedReadReversedRedistributes) {
  // Written under identity alignment, read under the reversed alignment:
  // almost every element changes owner; read() must still deliver element
  // i's data to element i.
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(12, &P, coll::DistKind::Block);
      coll::Collection<int> g(&d);
      g.forEachLocal([](int& v, std::int64_t i) {
        v = static_cast<int>(1000 + i);
      });
      ds::OStream s(fs, &d, "flip");
      s << g;
      s.write();
    });
  }
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Block);
    coll::Align a(12, -1, 11);
    coll::Collection<int> h(&d, &a);
    ds::IStream in(fs, &d, &a, "flip");
    in.read();
    in >> h;
    h.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(1000 + i));
    });
  });
}

}  // namespace
