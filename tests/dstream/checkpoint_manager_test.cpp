// Tests for the CheckpointManager extension: epoch rotation, marker
// discipline, damaged-epoch fallback, and cross-node-count restore.
#include <gtest/gtest.h>

#include "src/dstream/checkpoint.h"
#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

void fill(coll::Collection<double>& c, int epoch) {
  c.forEachLocal([epoch](double& v, std::int64_t g) {
    v = static_cast<double>(epoch * 1000 + g);
  });
}

std::int64_t countWrong(coll::Collection<double>& c, int epoch) {
  std::int64_t bad = 0;
  c.forEachLocal([&](double& v, std::int64_t g) {
    if (v != static_cast<double>(epoch * 1000 + g)) ++bad;
  });
  return bad;
}

TEST(CheckpointManager, SaveRestoreLatest) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.latestEpoch(node), -1);

    fill(data, 0);
    EXPECT_EQ(mgr.save(data), 0u);
    fill(data, 1);
    EXPECT_EQ(mgr.save(data), 1u);
    EXPECT_EQ(mgr.latestEpoch(node), 1);

    coll::Collection<double> back(&d);
    EXPECT_EQ(mgr.restoreLatest(back), 1);
    EXPECT_EQ(countWrong(back, 1), 0);
  });
}

TEST(CheckpointManager, PrunesBeyondKeepLast) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointOptions opts;
    opts.keepLast = 2;
    ds::CheckpointManager mgr(fs, opts);
    for (int e = 0; e < 5; ++e) {
      fill(data, e);
      mgr.save(data);
    }
    EXPECT_FALSE(fs.exists(mgr.epochFileName(0)));
    EXPECT_FALSE(fs.exists(mgr.epochFileName(2)));
    EXPECT_TRUE(fs.exists(mgr.epochFileName(3)));
    EXPECT_TRUE(fs.exists(mgr.epochFileName(4)));
  });
}

TEST(CheckpointManager, FallsBackWhenMarkedEpochDamaged) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  // Save epochs 0 and 1.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
    fill(data, 1);
    mgr.save(data);
  });
  // Corrupt epoch 1's data (the marker still points at it).
  fs.corruptByte("checkpoint.1", 200, 0x00);
  fs.corruptByte("checkpoint.1", 201, 0x00);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    // Restores epoch 0 instead (epoch 1 fails its data checksum or
    // structural validation, depending on which byte was hit).
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    EXPECT_EQ(countWrong(back, 0), 0);
  });
}

TEST(CheckpointManager, CrashBeforeMarkerKeepsPreviousEpoch) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
  });
  // Simulated crash mid-save of epoch 1: fail writes to the epoch file
  // after a few operations; the marker write never happens.
  std::atomic<int> epochWrites{0};
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.file == "checkpoint.1" && op.kind == pfs::OpKind::Write &&
        epochWrites.fetch_add(1) >= 2) {
      throw IoError("injected: power loss");
    }
  });
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 1);
    mgr.save(data);
  }),
               Error);
  fs.setFaultHook(nullptr);
  // Restore still lands on the intact epoch 0.
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.latestEpoch(node), 0);
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    EXPECT_EQ(countWrong(back, 0), 0);
  });
}

TEST(CheckpointManager, RestoreOnDifferentNodeCountAndDistribution) {
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(10, &P, coll::DistKind::Cyclic);
      coll::Collection<double> data(&d);
      ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
      fill(data, 7);
      mgr.save(data);
    });
  }
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(10, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    EXPECT_EQ(countWrong(back, 7), 0);
  });
}

TEST(CheckpointManager, NumberingResumesAfterRestart) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    {
      ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
      fill(data, 0);
      mgr.save(data);
      fill(data, 1);
      mgr.save(data);
    }
    // A fresh manager (restarted process) continues the epoch sequence.
    ds::CheckpointManager mgr2(fs, ds::CheckpointOptions{});
    fill(data, 2);
    EXPECT_EQ(mgr2.save(data), 2u);
  });
}

TEST(CheckpointManager, MultiCollectionEpochViaSaveWith) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<double> a(&d);
    coll::Collection<int> b(&d);
    fill(a, 3);
    b.forEachLocal([](int& v, std::int64_t g) { v = static_cast<int>(g); });

    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    mgr.saveWith(node, a.layout(), [&](ds::OStream& s) {
      s << a;
      s << b;
    });

    coll::Collection<double> a2(&d);
    coll::Collection<int> b2(&d);
    EXPECT_EQ(mgr.restoreWith(node, a2.layout(),
                              [&](ds::IStream& s) {
                                s >> a2;
                                s >> b2;
                              }),
              0);
    EXPECT_EQ(countWrong(a2, 3), 0);
    b2.forEachLocal([](int& v, std::int64_t g) {
      EXPECT_EQ(v, static_cast<int>(g));
    });
  });
}

TEST(CheckpointManager, FallsBackTwoEpochsWhenNewestTwoAreDamaged) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  ds::CheckpointOptions opts;
  opts.keepLast = 3;
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, opts);
    for (int e = 0; e < 3; ++e) {
      fill(data, e);
      mgr.save(data);
    }
  });
  // Corrupt BOTH the newest and the second-newest epoch.
  for (const char* name : {"checkpoint.2", "checkpoint.1"}) {
    fs.corruptByte(name, 200, 0x00);
    fs.corruptByte(name, 201, 0x00);
  }
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, opts);
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    EXPECT_EQ(countWrong(back, 0), 0);
  });
}

TEST(CheckpointManager, NothingRecoverableIsATypedErrorListingRejects) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
    fill(data, 1);
    mgr.save(data);
  });
  // 0xFF rather than 0x00: epoch 0's small double values are mostly zero
  // bytes already, and a no-op "corruption" would leave it restorable.
  fs.corruptByte("checkpoint.0", 200, 0xFF);
  fs.corruptByte("checkpoint.0", 201, 0xFF);
  fs.corruptByte("checkpoint.1", 200, 0xFF);
  fs.corruptByte("checkpoint.1", 201, 0xFF);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    // The marker promises a checkpoint; losing every retained epoch must
    // not masquerade as "no checkpoint exists".
    try {
      mgr.restoreLatest(back);
      ADD_FAILURE() << "expected CheckpointError";
    } catch (const ds::CheckpointError& e) {
      EXPECT_EQ(e.rejectedEpochs, (std::vector<std::uint64_t>{1, 0}));
      EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
    }
  });
}

TEST(CheckpointManager, TornMarkerFallsBackToScanningEpochFiles) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
    fill(data, 1);
    mgr.save(data);
  });
  // A crash between the marker's truncation and its 8-byte write leaves an
  // empty marker file; both epoch files are durable.
  fs.truncateFile("checkpoint.latest", 0);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.latestEpoch(node), -1);  // the marker itself is useless
    EXPECT_EQ(mgr.restoreLatest(back), 1);  // but the epochs are found
    EXPECT_EQ(countWrong(back, 1), 0);
  });
}

TEST(CheckpointManager, LostMarkerAlsoFallsBackToScan) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
    fs.remove(node, mgr.markerFileName());

    coll::Collection<double> back(&d);
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    EXPECT_EQ(countWrong(back, 0), 0);
  });
}

TEST(CheckpointManager, EmptyDirectoryRestoresNothingSilently) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.restoreLatest(back), -1);
  });
}

TEST(CheckpointManager, SaveAfterScanRestoreDoesNotCollideWithLeftovers) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    fill(data, 0);
    mgr.save(data);
    fill(data, 1);
    mgr.save(data);
  });
  // Torn marker + damaged newest epoch: restore falls back to epoch 0 but
  // epoch 1's file is still on disk; the next save must not reuse its id.
  fs.truncateFile("checkpoint.latest", 0);
  fs.corruptByte("checkpoint.1", 200, 0x00);
  fs.corruptByte("checkpoint.1", 201, 0x00);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    EXPECT_EQ(mgr.restoreLatest(back), 0);
    fill(back, 5);
    EXPECT_EQ(mgr.save(back), 2u);  // numbering resumes past the leftover
  });
}

TEST(CheckpointManager, InvalidOptionsRejected) {
  pfs::Pfs fs = test::memFs();
  ds::CheckpointOptions bad;
  bad.keepLast = 0;
  EXPECT_THROW(ds::CheckpointManager(fs, bad), UsageError);
  ds::CheckpointOptions noName;
  noName.baseName = "";
  EXPECT_THROW(ds::CheckpointManager(fs, noName), UsageError);
}

}  // namespace
