// Tests for the data-checksum extension (StreamOptions::checksumData) and
// the file-inspection API behind dsdump.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "src/dstream/inspect.h"
#include "src/util/crc32.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(Crc32Combine, MatchesDirectCrcOverSplits) {
  ByteBuffer data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<Byte>(i * 13 + 7);
  }
  const std::uint32_t whole = crc32(data);
  for (size_t split : {size_t{0}, size_t{1}, size_t{357}, size_t{999},
                       size_t{1000}}) {
    const std::uint32_t a = crc32({data.data(), split});
    const std::uint32_t b = crc32({data.data() + split, data.size() - split});
    EXPECT_EQ(crc32Combine(a, b, data.size() - split), whole)
        << "split at " << split;
  }
}

TEST(Crc32Combine, FoldsManyBlocksInOrder) {
  // The exact fold the streams perform across node blocks.
  ByteBuffer data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<Byte>(i ^ (i >> 3));
  }
  const size_t cuts[] = {0, 100, 101, 1500, 4000, 4096};
  std::uint32_t folded = 0;
  for (size_t c = 0; c + 1 < std::size(cuts); ++c) {
    const size_t len = cuts[c + 1] - cuts[c];
    folded = crc32Combine(folded, crc32({data.data() + cuts[c], len}), len);
  }
  EXPECT_EQ(folded, crc32(data));
}

TEST(Crc32Combine, EmptyBlockIsIdentity) {
  EXPECT_EQ(crc32Combine(0xDEADBEEFu, 0, 0), 0xDEADBEEFu);
}

void writeChecksummed(pfs::Pfs& fs, rt::Machine& m, const char* name,
                      std::int64_t n) {
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i) * 1.5;
    });
    ds::StreamOptions so;
    so.checksumData = true;
    ds::OStream s(fs, &d, name, so);
    s << g;
    s.write();
  });
}

TEST(DataChecksum, RoundTripVerifies) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  writeChecksummed(fs, m, "ck", 32);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(32, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream s(fs, &d, "ck");
    s.read();
    EXPECT_TRUE(s.currentRecord().hasDataCrc());
    s >> g;
    g.forEachLocal([](double& v, std::int64_t i) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(i) * 1.5);
    });
  });
}

TEST(DataChecksum, DetectsDataCorruption) {
  // Without the checksum, a flipped payload byte reads back silently wrong;
  // with it, the read throws. This is the whole point of the extension.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  writeChecksummed(fs, m, "ck2", 32);
  // Find the data section and flip a byte in it.
  rt::Machine probe(1);
  std::uint64_t dataOffset = 0;
  probe.run([&](rt::Node& node) {
    auto f = fs.open(node, "ck2", pfs::OpenMode::Read);
    Byte prefix[8];
    f->readAt(node, ds::kFileHeaderBytes, prefix);
    dataOffset = ds::kFileHeaderBytes +
                 ds::RecordHeader::encodedLength(prefix) + 8ull * 32;
  });
  fs.corruptByte("ck2", dataOffset + 17, 0xEE);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(32, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream s(fs, &d, "ck2");
    s.read();
  }),
               FormatError);
}

TEST(DataChecksum, CoexistsWithRedistributionAndMultipleRecords) {
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(20, &P, coll::DistKind::Cyclic);
      coll::Collection<double> g(&d);
      g.forEachLocal([](double& v, std::int64_t i) {
        v = static_cast<double>(i);
      });
      ds::StreamOptions so;
      so.checksumData = true;
      ds::OStream s(fs, &d, "ck3", so);
      s << g;
      s.write();
      s << g;
      s.write();  // second checksummed record
    });
  }
  // Read on a different node count (redistribution) — chunk boundaries
  // differ from writer blocks, the combine still matches.
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(20, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream s(fs, &d, "ck3");
    s.read();
    s >> g;
    s.read();  // the trailer of record 0 must have been skipped correctly
    s >> g;
    EXPECT_TRUE(s.atEnd());
    g.forEachLocal([](double& v, std::int64_t i) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
    });
  });
}

TEST(Inspect, WalksRecordsAndSizes) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(10, &P, coll::DistKind::Cyclic);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    ds::OStream s(fs, &d, "insp");
    s << g;
    s.write();
    s << g;
    s << g;
    s.write();
  });

  // Pull the raw bytes into a MemStorage for inspection.
  pfs::MemStorage storage;
  rt::Machine probe(1);
  probe.run([&](rt::Node& node) {
    auto f = fs.open(node, "insp", pfs::OpenMode::Read);
    ByteBuffer all(static_cast<size_t>(f->size()));
    f->readAt(node, 0, all);
    storage.writeAt(0, all);
  });

  const ds::FileInfo info = ds::inspectFile(storage);
  ASSERT_EQ(info.records.size(), 2u);
  EXPECT_EQ(info.records[0].header.seq, 0u);
  EXPECT_EQ(info.records[1].header.seq, 1u);
  EXPECT_EQ(info.records[0].header.elementCount(), 10);
  EXPECT_EQ(info.records[0].header.inserts.size(), 1u);
  EXPECT_EQ(info.records[1].header.inserts.size(), 2u);
  EXPECT_EQ(info.records[0].minElementBytes(), 4u);
  EXPECT_EQ(info.records[0].maxElementBytes(), 4u);
  EXPECT_EQ(info.records[1].totalDataBytes(), 10u * 8u);

  // Element payloads are addressable: file order under CYCLIC on 2 nodes
  // is 0,2,4,6,8 then 1,3,5,7,9.
  const ByteBuffer e1 = ds::readElementData(storage, info.records[0], 1);
  int v;
  std::memcpy(&v, e1.data(), 4);
  EXPECT_EQ(v, 2);

  EXPECT_THROW(ds::readElementData(storage, info.records[0], 10),
               UsageError);

  const std::string report = ds::formatReport(info, /*verbose=*/true);
  EXPECT_NE(report.find("2 record(s)"), std::string::npos);
  EXPECT_NE(report.find("CYCLIC x 2 nodes"), std::string::npos);
  EXPECT_NE(report.find("insert 1: collection"), std::string::npos);
}

TEST(Inspect, RejectsInconsistentSizeTable) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(1);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "badsz");
    s << g;
    s.write();
  });
  pfs::MemStorage storage;
  rt::Machine probe(1);
  probe.run([&](rt::Node& node) {
    auto f = fs.open(node, "badsz", pfs::OpenMode::Read);
    ByteBuffer all(static_cast<size_t>(f->size()));
    f->readAt(node, 0, all);
    storage.writeAt(0, all);
  });
  // Corrupt one size-table entry (the header CRC does not cover it; the
  // dataBytes cross-check must catch the inconsistency).
  rt::Machine probe2(1);
  std::uint64_t tableOffset = 0;
  probe2.run([&](rt::Node&) {
    Byte prefix[8];
    storage.readAt(ds::kFileHeaderBytes, prefix);
    tableOffset =
        ds::kFileHeaderBytes + ds::RecordHeader::encodedLength(prefix);
  });
  const Byte big = 0x77;
  storage.writeAt(tableOffset + 2, {&big, 1});
  EXPECT_THROW(ds::inspectFile(storage), FormatError);
}

TEST(Inspect, EmptyFileAndAlienFileRejected) {
  pfs::MemStorage empty;
  EXPECT_THROW(ds::inspectFile(empty), FormatError);
  pfs::MemStorage alien;
  alien.writeAt(0, ByteBuffer(64, 0x42));
  EXPECT_THROW(ds::inspectFile(alien), FormatError);
}

}  // namespace
