// Hand-crafted record headers whose layout parameters lie: the pieces
// (distribution, alignment) decode fine and the header CRC verifies, but
// the combination routes elements outside the collection. Before the
// layout-hardening fix these bytes produced UsageError (or worse, aliased
// global indices silently collapsing in the legacy redistribution map);
// now they must surface as FormatError at header-decode time on every
// node, and salvage-mode readers must skip them collectively. The
// downstream duplicate-delivery checks (redist::buildPlan's partition
// validation, the legacy path's emplace check) stay as defense in depth:
// affine alignments that pass these decode checks cannot alias, so the
// decode boundary is where reachable corruption is stopped.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/dstream/dstream.h"
#include "src/util/crc32.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

// Mirrors RecordHeader::encode() but takes raw layout parameters, so we
// can emit combinations the hardened Layout constructor refuses to build.
ByteBuffer encodeHostileHeader(std::int64_t distSize, std::int64_t alignSize,
                               std::int64_t stride, std::int64_t offset) {
  ByteBuffer out;
  ByteWriter w(out);
  w.u32(ds::kRecordMagic);
  w.u32(0);  // total length, patched below
  w.u32(0);  // seq
  w.u8(0);   // HeaderMode::Gathered
  w.u8(0);   // flags
  // Distribution: Block over 2 writer nodes.
  w.i64(distSize);
  w.u32(2);
  w.u8(0);  // DistKind::Block
  w.i64(1);
  // Alignment: the hostile part.
  w.i64(alignSize);
  w.i64(stride);
  w.i64(offset);
  w.u32(1);  // one insert
  w.u32(ds::typeTag<int>());
  w.u8(0);  // InsertKind::Collection
  w.u32(4);
  w.u64(4 * static_cast<std::uint64_t>(alignSize));  // dataBytes
  const std::uint32_t total = static_cast<std::uint32_t>(out.size() + 4);
  encodeU32(total, out.data() + 4);
  w.u32(crc32({out.data(), out.size()}));
  return out;
}

// A complete d/stream file image holding one hostile record: valid file
// header, CRC-valid record header, then a plausible size table + data so
// the extent checks see a whole record.
void writeHostileFile(pfs::Pfs& fs, const char* name, std::int64_t distSize,
                      std::int64_t alignSize, std::int64_t stride,
                      std::int64_t offset) {
  ByteBuffer img = ds::encodeFileHeader();
  const ByteBuffer hdr =
      encodeHostileHeader(distSize, alignSize, stride, offset);
  img.insert(img.end(), hdr.begin(), hdr.end());
  ByteWriter w(img);
  for (std::int64_t j = 0; j < alignSize; ++j) w.u64(4);  // size table
  for (std::int64_t j = 0; j < alignSize; ++j) w.u32(0);  // data
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Create);
    f->writeAt(node, 0, img);
  });
}

TEST(CorruptLayout, AlignEscapingDistributionIsFormatError) {
  // stride 1, offset 4 over an 8-wide template: element 7 maps to index
  // 11. Every global index the tail elements claim aliases nothing that
  // exists; pre-fix this escaped as UsageError from deep inside the
  // redistribution arithmetic.
  pfs::Pfs fs = test::memFs();
  writeHostileFile(fs, "escape", 8, 8, 1, 4);
  rt::Machine m(2);
  try {
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(8, &P, coll::DistKind::Block);
      ds::IStream s(fs, &d, "escape");
      s.read();
    });
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("layout is inconsistent"),
              std::string::npos)
        << e.what();
  }
}

TEST(CorruptLayout, OverflowingStrideIsFormatError) {
  // stride * (size - 1) overflows int64: without the overflow-checked
  // endpoint computation this wrapped negative and sailed past the range
  // check, later indexing the distribution with garbage.
  pfs::Pfs fs = test::memFs();
  writeHostileFile(fs, "overflow", 8, 8, std::int64_t{1} << 61, 0);
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
                 coll::Processors P;
                 coll::Distribution d(8, &P, coll::DistKind::Block);
                 ds::IStream s(fs, &d, "overflow");
                 s.read();
               }),
               FormatError);
}

TEST(CorruptLayout, NegativeMappingIsFormatError) {
  pfs::Pfs fs = test::memFs();
  writeHostileFile(fs, "negative", 8, 8, 1, -3);
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
                 coll::Processors P;
                 coll::Distribution d(8, &P, coll::DistKind::Block);
                 ds::IStream s(fs, &d, "negative");
                 s.read();
               }),
               FormatError);
}

TEST(CorruptLayout, SalvageSkipsHostileRecordCollectively) {
  // With salvage on, a hostile header is damage, not death: every node
  // must make the same skip decision (the header bytes were broadcast, so
  // the decode failure is symmetric), report the loss, and recover
  // nothing.
  pfs::Pfs fs = test::memFs();
  writeHostileFile(fs, "salvage", 8, 8, 1, 4);
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::StreamOptions opts;
    opts.salvage = true;
    ds::IStream s(fs, &d, "salvage", opts);
    s.read();
    EXPECT_FALSE(s.hasRecord());
    EXPECT_EQ(s.salvageReport().recordsRecovered, 0u);
    EXPECT_EQ(s.salvageReport().recordsLost, 1u);
    ASSERT_EQ(s.salvageReport().damage.size(), 1u);
  });
}

}  // namespace
