// Failure-path tests: corrupted, truncated, and alien files must surface as
// typed FormatError/IoError on every node, never as crashes or hangs.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

void writeIntFile(pfs::Pfs& fs, const char* name, std::int64_t n) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    // No index footer: these tests corrupt byte ranges computed from the
    // raw record framing, so the record chain must end at end of file.
    ds::StreamOptions so;
    so.indexFooter = false;
    ds::OStream s(fs, &d, name, so);
    s << g;
    s.write();
  });
}

TEST(Corruption, NotADStreamFile) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  // Manufacture a non-d/stream file.
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "alien", pfs::OpenMode::Create);
    if (node.id() == 0) {
      f->writeAt(node, 0, ByteBuffer(64, 0x55));
    }
    node.barrier();
  });
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "alien");  // header check happens at open
  }),
               FormatError);
}

TEST(Corruption, EmptyFileRejected) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    fs.open(node, "empty", pfs::OpenMode::Create);
    node.barrier();
  });
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "empty");
  }),
               FormatError);
}

TEST(Corruption, WrongFormatVersionRejected) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "ver", 8);
  fs.corruptByte("ver", 8, 99);  // version field in the file header
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "ver");
  }),
               FormatError);
}

TEST(Corruption, RecordHeaderChecksumDetectsFlips) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "crc", 8);
  // Flip one byte inside the record header (past magic+length so the
  // failure is CRC, not framing).
  fs.corruptByte("crc", ds::kFileHeaderBytes + 13, 0xAB);
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "crc");
    s.read();
  }),
               FormatError);
}

TEST(Corruption, BadRecordMagicRejected) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "magic", 8);
  fs.corruptByte("magic", ds::kFileHeaderBytes, 0x00);
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "magic");
    s.read();
  }),
               FormatError);
}

TEST(Corruption, TruncatedDataDetected) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "trunc", 64);
  rt::Machine probe(1);
  std::uint64_t fullSize = 0;
  probe.run([&](rt::Node& node) {
    auto f = fs.open(node, "trunc", pfs::OpenMode::Read);
    fullSize = f->size();
  });
  fs.truncateFile("trunc", fullSize - 40);  // cut into the data section
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(64, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "trunc");
    s.read();
    s >> g;
  }),
               Error);  // IoError (short readOrdered) on some node
}

TEST(Corruption, TruncatedHeaderDetected) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "hdrcut", 64);
  fs.truncateFile("hdrcut", ds::kFileHeaderBytes + 10);  // mid record header
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(64, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "hdrcut");
    s.read();
  }),
               FormatError);
}

TEST(Corruption, ExtractOverrunWithinElementThrows) {
  // Extraction sequence mismatching the insert sequence runs off the end of
  // the element's byte range — caught by the per-element bounds check.
  struct Small {
    int a = 0;
  };
  struct Big {
    int a = 0;
    double b = 0.0;
    double c = 0.0;
  };
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<Small> g(&d);
    ds::OStream s(fs, &d, "small");
    s << g.field(&Small::a);
    s.write();
  });
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<Big> g(&d);
    ds::IStream s(fs, &d, "small");
    s.read();
    // Same tag kind (Field/int) would be required; extracting a double
    // field where an int was written trips the type check; extracting an
    // int field then MORE data trips the bounds check. Use the bounds path:
    s >> g.field(&Big::a);      // consumes the 4 bytes
    s >> g.field(&Big::b);      // no corresponding insert
  }),
               UsageError);
}

TEST(Corruption, InjectedReadFaultDuringRecordRead) {
  pfs::Pfs fs = test::memFs();
  writeIntFile(fs, "flaky", 32);
  std::atomic<int> readOps{0};
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Read && readOps.fetch_add(1) == 2) {
      throw IoError("injected transient read failure");
    }
  });
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(32, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "flaky");
    s.read();
    s >> g;
  }),
               Error);
  // After clearing the fault the same file reads fine (data intact).
  fs.setFaultHook(nullptr);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(32, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "flaky");
    s.read();
    s >> g;
    g.forEachLocal([&](int& v, std::int64_t i) {
      if (v != static_cast<int>(i)) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Corruption, WriteFaultLeavesStreamUsableAfterRetryFileRecreate) {
  pfs::Pfs fs = test::memFs();
  bool arm = true;
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (arm && op.kind == pfs::OpKind::Write) {
      throw IoError("injected write failure");
    }
  });
  rt::Machine m(2);
  EXPECT_THROW(writeIntFile(fs, "retry", 8), IoError);
  arm = false;
  EXPECT_NO_THROW(writeIntFile(fs, "retry", 8));
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "retry");
    s.read();
    s >> g;
    g.forEachLocal([&](int& v, std::int64_t i) {
      if (v != static_cast<int>(i)) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
