// End-to-end CLI test for the dsdump tool: write a real file with the
// library, invoke the binary, check its report and exit codes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

#ifndef PCXX_DSDUMP_PATH
#error "PCXX_DSDUMP_PATH must be defined by the build"
#endif

namespace {

using namespace pcxx;

class DsdumpCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_dsdump_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Run dsdump with `args`; returns (exitCode, stdout+stderr).
  std::pair<int, std::string> runTool(const std::string& args) {
    const std::string outPath = (dir_ / "tool.out").string();
    const std::string cmd = std::string(PCXX_DSDUMP_PATH) + " " + args +
                            " > " + outPath + " 2>&1";
    const int rc = std::system(cmd.c_str());
    std::ifstream in(outPath);
    std::ostringstream ss;
    ss << in.rdbuf();
    return {WEXITSTATUS(rc), ss.str()};
  }

  /// Write `records` checksummed records to `name` inside the temp dir.
  /// The corruption tests below damage byte ranges computed from the end of
  /// the file, so they write without the index footer to keep those ranges
  /// inside the record chain.
  void writeStream(const std::string& name, int records,
                   bool indexFooter = true) {
    pfs::PfsConfig cfg;
    cfg.backend = pfs::PfsConfig::Backend::Posix;
    cfg.dir = dir_.string();
    pfs::Pfs fs(cfg);
    rt::Machine m(2);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(8, &P, coll::DistKind::Block);
      coll::Collection<double> g(&d);
      ds::StreamOptions so;
      so.checksumData = true;
      so.indexFooter = indexFooter;
      // The corruption tests flip bytes at raw file offsets, so the file
      // must stay unframed even when PCXX_CODEC enables the chunk codec
      // (the framed path has its own test below).
      so.codec = "none";
      ds::OStream s(fs, &d, name, so);
      for (int r = 0; r < records; ++r) {
        g.forEachLocal([r](double& v, std::int64_t i) {
          v = static_cast<double>(r * 10 + i);
        });
        s << g;
        s.write();
      }
    });
  }

  std::filesystem::path dir_;
};

TEST_F(DsdumpCli, ReportsRecordsOfARealFile) {
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir_.string();
  pfs::Pfs fs(cfg);
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i);
    });
    ds::OStream s(fs, &d, "dump.ds");
    s << g;
    s.write();
  });

  auto [rc, out] = runTool((dir_ / "dump.ds").string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 record(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("9 elements"), std::string::npos) << out;
  EXPECT_NE(out.find("CYCLIC x 3 nodes"), std::string::npos) << out;

  auto [rcv, outv] = runTool("-v " + (dir_ / "dump.ds").string());
  EXPECT_EQ(rcv, 0);
  EXPECT_NE(outv.find("insert 0: collection"), std::string::npos) << outv;

  auto [rce, oute] =
      runTool("--element 0 " + (dir_ / "dump.ds").string());
  EXPECT_EQ(rce, 0);
  EXPECT_NE(oute.find("8 bytes"), std::string::npos) << oute;
}

TEST_F(DsdumpCli, FailsCleanlyOnAlienFile) {
  const std::string alien = (dir_ / "alien.bin").string();
  std::ofstream(alien) << "not a dstream file at all";
  auto [rc, out] = runTool(alien);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("dsdump:"), std::string::npos) << out;
}

TEST_F(DsdumpCli, VerifyReportsCleanFilesWithExitZero) {
  writeStream("ok.ds", 2);
  auto [rc, out] = runTool("--verify " + (dir_ / "ok.ds").string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("clean"), std::string::npos) << out;
}

TEST_F(DsdumpCli, VerifyFlagsCorruptionWithExitThree) {
  writeStream("bad.ds", 2, /*indexFooter=*/false);
  const auto path = dir_ / "bad.ds";
  // Flip bytes near the end of the file: inside the last record's data.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size) - 10);
    f.put('\xff');
    f.put('\xff');
  }
  auto [rc, out] = runTool("--verify " + path.string());
  EXPECT_EQ(rc, 3) << out;
  EXPECT_NE(out.find("lost"), std::string::npos) << out;
}

TEST_F(DsdumpCli, VerifyFlagsTornTailsWithExitThree) {
  writeStream("torn.ds", 2, /*indexFooter=*/false);
  const auto path = dir_ / "torn.ds";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);
  auto [rc, out] = runTool("--verify " + path.string());
  EXPECT_EQ(rc, 3) << out;
}

TEST_F(DsdumpCli, RepairTruncatesToTheValidPrefix) {
  writeStream("fix.ds", 3, /*indexFooter=*/false);
  const auto path = dir_ / "fix.ds";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);  // torn tail mid-record-2

  auto [rc, out] = runTool("--repair " + path.string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("repaired"), std::string::npos) << out;
  EXPECT_NE(out.find("2 record(s) kept"), std::string::npos) << out;

  // After repair the file verifies clean and dumps the surviving records.
  auto [rcv, outv] = runTool("--verify " + path.string());
  EXPECT_EQ(rcv, 0) << outv;
  auto [rcd, outd] = runTool(path.string());
  EXPECT_EQ(rcd, 0) << outd;
  EXPECT_NE(outd.find("2 record(s)"), std::string::npos) << outd;
}

// Regression: --repair used to truncate and stop, leaving the survivors
// footer-less — O(1) seeks and the explicit end-of-chain marker were lost
// on every repair. A repaired file must carry a FRESH valid index footer
// covering exactly the surviving records.
TEST_F(DsdumpCli, RepairReappendsAFreshIndexFooter) {
  writeStream("refoot.ds", 3, /*indexFooter=*/false);
  const auto path = dir_ / "refoot.ds";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);  // torn tail mid-record-2

  auto [rc, out] = runTool("--repair " + path.string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("fresh index footer"), std::string::npos) << out;

  // The repaired file now probes as indexed, and the footer's entries
  // agree with the surviving chain (inspectFile cross-checks them).
  const ds::FileInfo info = ds::inspectFile(path.string());
  EXPECT_TRUE(info.indexed);
  EXPECT_EQ(info.records.size(), 2u);
  auto [rcv, outv] = runTool("--verify " + path.string());
  EXPECT_EQ(rcv, 0) << outv;
}

// Edge case: when the DAMAGE is the footer itself (body corrupted, trailer
// intact), repair truncates to footerOffset. No stale trailer bytes may
// survive that truncation — the trailer found at EOF afterwards must be
// the freshly appended one, pointing at a valid body.
TEST_F(DsdumpCli, RepairAtFooterOffsetLeavesNoStaleTrailerBytes) {
  writeStream("footfix.ds", 2, /*indexFooter=*/true);
  const auto path = dir_ / "footfix.ds";

  // Read footerOffset out of the self-checksummed trailer (bytes
  // [size-24, size-16)), then flip a byte inside the footer BODY.
  const auto size = std::filesystem::file_size(path);
  std::uint64_t footerOffset = 0;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size) - 24);
    unsigned char enc[8];
    f.read(reinterpret_cast<char*>(enc), 8);
    for (int i = 7; i >= 0; --i) {
      footerOffset = (footerOffset << 8) | enc[i];
    }
    f.seekp(static_cast<std::streamoff>(footerOffset) + 2);
    f.put('\xEE');
  }
  ASSERT_LT(footerOffset, size);

  auto [rcvBad, outvBad] = runTool("--verify " + path.string());
  EXPECT_EQ(rcvBad, 3) << outvBad;
  EXPECT_NE(outvBad.find("corrupt index footer"), std::string::npos)
      << outvBad;

  auto [rc, out] = runTool("--repair " + path.string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("2 record(s) kept"), std::string::npos) << out;

  // Every record survived, the new footer is valid, and strict inspection
  // (which rejects any footer/chain disagreement, i.e. any stale bytes)
  // passes.
  const ds::FileInfo info = ds::inspectFile(path.string());
  EXPECT_TRUE(info.indexed);
  EXPECT_EQ(info.records.size(), 2u);
  EXPECT_EQ(info.footerOffset, footerOffset);
  auto [rcv, outv] = runTool("--verify " + path.string());
  EXPECT_EQ(rcv, 0) << outv;
  EXPECT_NE(outv.find("clean"), std::string::npos) << outv;
}

// A codec-framed stream file with a physically torn tail must repair
// through the same CLI: dsdump unwraps the framing, truncates in LOGICAL
// bytes (re-sealing chunks), and appends the fresh footer through the
// codec.
TEST_F(DsdumpCli, RepairWorksOnCodecFramedFiles) {
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir_.string();
  pfs::Pfs fs(cfg);
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.checksumData = true;
    so.codec = "lz";
    so.codecChunkBytes = 256;
    ds::OStream s(fs, &d, "framed.ds", so);
    for (int r = 0; r < 3; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(r * 10 + i);
      });
      s << g;
      s.write();
    }
  });
  const auto path = dir_ / "framed.ds";
  {
    std::ifstream f(path, std::ios::binary);
    char magic[8];
    f.read(magic, 8);
    ASSERT_EQ(std::string(magic, 8), "PCXXCDC1");
  }
  // Tear the last physical frame: its chunk reads as zeros, so the tail
  // records are damage the repair must truncate away.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 30);

  auto [rcvBad, outvBad] = runTool("--verify " + path.string());
  EXPECT_EQ(rcvBad, 3) << outvBad;
  auto [rc, out] = runTool("--repair " + path.string());
  EXPECT_EQ(rc, 0) << out;
  auto [rcv, outv] = runTool("--verify " + path.string());
  EXPECT_EQ(rcv, 0) << outv;
  // Still framed after the repair, and the survivors still read.
  {
    std::ifstream f(path, std::ios::binary);
    char magic[8];
    f.read(magic, 8);
    EXPECT_EQ(std::string(magic, 8), "PCXXCDC1");
  }
  auto [rcd, outd] = runTool(path.string());
  EXPECT_EQ(rcd, 0) << outd;
}

TEST_F(DsdumpCli, UsageOnMissingArgument) {
  auto [rc, out] = runTool("");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

}  // namespace
