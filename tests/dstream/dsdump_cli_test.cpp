// End-to-end CLI test for the dsdump tool: write a real file with the
// library, invoke the binary, check its report and exit codes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

#ifndef PCXX_DSDUMP_PATH
#error "PCXX_DSDUMP_PATH must be defined by the build"
#endif

namespace {

using namespace pcxx;

class DsdumpCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_dsdump_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Run dsdump with `args`; returns (exitCode, stdout+stderr).
  std::pair<int, std::string> runTool(const std::string& args) {
    const std::string outPath = (dir_ / "tool.out").string();
    const std::string cmd = std::string(PCXX_DSDUMP_PATH) + " " + args +
                            " > " + outPath + " 2>&1";
    const int rc = std::system(cmd.c_str());
    std::ifstream in(outPath);
    std::ostringstream ss;
    ss << in.rdbuf();
    return {WEXITSTATUS(rc), ss.str()};
  }

  std::filesystem::path dir_;
};

TEST_F(DsdumpCli, ReportsRecordsOfARealFile) {
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir_.string();
  pfs::Pfs fs(cfg);
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i);
    });
    ds::OStream s(fs, &d, "dump.ds");
    s << g;
    s.write();
  });

  auto [rc, out] = runTool((dir_ / "dump.ds").string());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("1 record(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("9 elements"), std::string::npos) << out;
  EXPECT_NE(out.find("CYCLIC x 3 nodes"), std::string::npos) << out;

  auto [rcv, outv] = runTool("-v " + (dir_ / "dump.ds").string());
  EXPECT_EQ(rcv, 0);
  EXPECT_NE(outv.find("insert 0: collection"), std::string::npos) << outv;

  auto [rce, oute] =
      runTool("--element 0 " + (dir_ / "dump.ds").string());
  EXPECT_EQ(rce, 0);
  EXPECT_NE(oute.find("8 bytes"), std::string::npos) << oute;
}

TEST_F(DsdumpCli, FailsCleanlyOnAlienFile) {
  const std::string alien = (dir_ / "alien.bin").string();
  std::ofstream(alien) << "not a dstream file at all";
  auto [rc, out] = runTool(alien);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("dsdump:"), std::string::npos) << out;
}

TEST_F(DsdumpCli, UsageOnMissingArgument) {
  auto [rc, out] = runTool("");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

}  // namespace
