// Unit tests for the per-element insert/extract machinery in isolation:
// pointer lists, the arena, bounds checks, and the array() wrapper.
#include <gtest/gtest.h>

#include <cstring>

#include "src/dstream/element_io.h"
#include "src/dstream/record.h"
#include "src/dstream/typetag.h"

namespace {

using namespace pcxx;
using namespace pcxx::ds;

ByteBuffer flatten(const std::vector<Entry>& entries) {
  ByteBuffer out;
  for (const Entry& e : entries) {
    const Byte* p = static_cast<const Byte*>(e.ptr);
    out.insert(out.end(), p, p + e.bytes);
  }
  return out;
}

TEST(ElementInserter, LvalueScalarsAreDeferredPointers) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  int v = 1;
  ins << v;
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].ptr, &v);  // points at the caller's storage
  EXPECT_EQ(entries[0].bytes, sizeof(int));
  // Figure 4 semantics: mutate AFTER insert, BEFORE write — the write sees
  // the final value.
  v = 42;
  const ByteBuffer data = flatten(entries);
  int out;
  std::memcpy(&out, data.data(), sizeof(int));
  EXPECT_EQ(out, 42);
}

TEST(ElementInserter, RvaluesAreCopiedImmediately) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  {
    int temporary = 7;
    ins << (temporary * 3);  // prvalue: arena-copied
  }
  const ByteBuffer data = flatten(entries);
  int out;
  std::memcpy(&out, data.data(), sizeof(int));
  EXPECT_EQ(out, 21);
}

TEST(ElementInserter, ArrayRecordsRawBytes) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  double* data = new double[3]{1.5, 2.5, 3.5};
  ins << array(data, 3);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].bytes, 24u);
  EXPECT_EQ(entries[0].ptr, data);
  delete[] data;
}

TEST(ElementInserter, NullArrayWithZeroCountOk) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  double* data = nullptr;
  EXPECT_NO_THROW(ins << array(data, 0));
  EXPECT_THROW(ins << array(data, 3), UsageError);   // null with count
  EXPECT_THROW(ins << array(data, -1), UsageError);  // negative count
}

TEST(ElementInserter, VectorPrefixesLength) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  std::vector<float> v{1.0f, 2.0f};
  ins << v;
  const ByteBuffer data = flatten(entries);
  ASSERT_EQ(data.size(), 8u + 8u);
  std::uint64_t len;
  std::memcpy(&len, data.data(), 8);
  EXPECT_EQ(len, 2u);
}

TEST(ElementInserter, StringPrefixesLength) {
  std::vector<Entry> entries;
  ds::detail::Arena arena;
  ElementInserter ins(entries, arena);
  std::string s = "hi";
  ins << s;
  const ByteBuffer data = flatten(entries);
  ASSERT_EQ(data.size(), 10u);
  EXPECT_EQ(data[8], 'h');
}

TEST(ElementExtractor, ReadsSequentially) {
  ByteBuffer data;
  ByteWriter w(data);
  const int i = 5;
  const double d = 2.75;
  w.bytes(asBytes(i));
  w.bytes(asBytes(d));
  std::uint64_t cursor = 0;
  ElementExtractor ex(data.data(), data.size(), cursor);
  int i2;
  double d2;
  ex >> i2 >> d2;
  EXPECT_EQ(i2, 5);
  EXPECT_DOUBLE_EQ(d2, 2.75);
  EXPECT_EQ(ex.remaining(), 0u);
}

TEST(ElementExtractor, OverrunThrowsFormatError) {
  ByteBuffer data(4);
  std::uint64_t cursor = 0;
  ElementExtractor ex(data.data(), data.size(), cursor);
  double d;
  EXPECT_THROW(ex >> d, FormatError);
}

TEST(ElementExtractor, CursorPersistsAcrossExtractors) {
  // The stream constructs a fresh extractor per extract call; the shared
  // cursor carries the position forward — that is what lets several
  // extracts per record walk one element's data.
  ByteBuffer data;
  ByteWriter w(data);
  const int a = 1, b = 2;
  w.bytes(asBytes(a));
  w.bytes(asBytes(b));
  std::uint64_t cursor = 0;
  {
    ElementExtractor ex(data.data(), data.size(), cursor);
    int out;
    ex >> out;
    EXPECT_EQ(out, 1);
  }
  {
    ElementExtractor ex(data.data(), data.size(), cursor);
    int out;
    ex >> out;
    EXPECT_EQ(out, 2);
  }
}

TEST(ElementExtractor, ArrayAllocatesWhenNull) {
  ByteBuffer data;
  ByteWriter w(data);
  const double vals[2] = {4.5, 5.5};
  w.bytes(asBytes(vals, 2));
  std::uint64_t cursor = 0;
  ElementExtractor ex(data.data(), data.size(), cursor);
  double* target = nullptr;
  ex >> array(target, 2);
  ASSERT_NE(target, nullptr);
  EXPECT_DOUBLE_EQ(target[1], 5.5);
  delete[] target;
}

TEST(ElementExtractor, ArrayReusesExistingAllocation) {
  ByteBuffer data;
  ByteWriter w(data);
  const double vals[2] = {1.0, 2.0};
  w.bytes(asBytes(vals, 2));
  std::uint64_t cursor = 0;
  ElementExtractor ex(data.data(), data.size(), cursor);
  double* target = new double[2]{0, 0};
  double* before = target;
  ex >> array(target, 2);
  EXPECT_EQ(target, before);  // not reallocated
  EXPECT_DOUBLE_EQ(target[0], 1.0);
  delete[] target;
}

TEST(ElementExtractor, VectorResizesToStoredLength) {
  ByteBuffer data;
  ByteWriter w(data);
  w.u64(3);
  const std::int32_t vals[3] = {7, 8, 9};
  w.bytes(asBytes(vals, 3));
  std::uint64_t cursor = 0;
  ElementExtractor ex(data.data(), data.size(), cursor);
  std::vector<std::int32_t> v{1, 1, 1, 1, 1};  // wrong size going in
  ex >> v;
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 9);
}

TEST(Arena, AddressesAreStable) {
  ds::detail::Arena arena;
  Byte* first = arena.alloc(8);
  std::memset(first, 0xAA, 8);
  // Many more allocations must not move the first buffer.
  for (int i = 0; i < 1000; ++i) arena.alloc(16);
  EXPECT_EQ(first[0], 0xAA);
  EXPECT_EQ(first[7], 0xAA);
}

TEST(TypeTag, StableAndDistinct) {
  EXPECT_EQ(typeTag<int>(), typeTag<int>());
  EXPECT_NE(typeTag<int>(), typeTag<double>());
  EXPECT_NE(typeTag<int>(), typeTag<unsigned int>());
  struct A {
    int x;
  };
  struct B {
    int x;
  };
  EXPECT_NE(typeTag<A>(), typeTag<B>());
}

TEST(RecordHeader, EncodeDecodeRoundTrip) {
  coll::Distribution d(100, 8, coll::DistKind::BlockCyclic, 4);
  coll::Layout layout(d, coll::Align(50, 2, 0));
  RecordHeader h{3, HeaderMode::Parallel, layout,
                 {InsertDesc{typeTag<int>(), InsertKind::Collection, 4},
                  InsertDesc{typeTag<double>(), InsertKind::Field, 8}},
                 9999};
  const ByteBuffer wire = h.encode();
  EXPECT_EQ(RecordHeader::encodedLength(std::span<const Byte>(wire).first(8)),
            wire.size());
  const RecordHeader back = RecordHeader::decode(wire);
  EXPECT_EQ(back.seq, 3u);
  EXPECT_EQ(back.mode, HeaderMode::Parallel);
  EXPECT_EQ(back.layout, layout);
  ASSERT_EQ(back.inserts.size(), 2u);
  EXPECT_EQ(back.inserts[0], h.inserts[0]);
  EXPECT_EQ(back.inserts[1], h.inserts[1]);
  EXPECT_EQ(back.dataBytes, 9999u);
  EXPECT_EQ(back.sizeTableBytes(), 8u * 50u);
}

TEST(RecordHeader, CrcRejectsTampering) {
  coll::Distribution d(4, 1, coll::DistKind::Block, 1);
  RecordHeader h{0, HeaderMode::Gathered, coll::Layout(d), {}, 0};
  ByteBuffer wire = h.encode();
  wire[10] ^= 0x01;
  EXPECT_THROW(RecordHeader::decode(wire), FormatError);
}

TEST(FileHeader, RoundTripAndRejection) {
  const ByteBuffer hdr = encodeFileHeader();
  EXPECT_NO_THROW(verifyFileHeader(hdr));
  ByteBuffer bad = hdr;
  bad[0] = 'X';
  EXPECT_THROW(verifyFileHeader(bad), FormatError);
  EXPECT_THROW(verifyFileHeader(ByteBuffer(4)), FormatError);
}

}  // namespace
