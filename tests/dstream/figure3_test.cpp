// The paper's Figure 3 example, end to end: a distributed grid of
// ParticleList objects (with variable-sized mass/position arrays) is
// written by an "output program" and read back by an "input program",
// including the single-field insert (s << g.numberOfParticles).
#include <gtest/gtest.h>

#include "dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct Position {
  double x, y, z;
  bool operator==(const Position&) const = default;
};

struct ParticleList {
  int numberOfParticles = 0;
  double* mass = nullptr;        // variable sized
  Position* position = nullptr;  // arrays
  ~ParticleList() {
    delete[] mass;
    delete[] position;
  }
  ParticleList() = default;
  ParticleList(const ParticleList&) = delete;
  ParticleList& operator=(const ParticleList&) = delete;
};

declareStreamInserter(ParticleList& p) {
  // Insert the numberOfParticles field of p (an integer):
  s << p.numberOfParticles;
  // Insert the mass field, a variable-sized array of size
  // numberOfParticles:
  s << pcxx::ds::array(p.mass, p.numberOfParticles);
  // Similarly, insert the position field:
  s << pcxx::ds::array(p.position, p.numberOfParticles);
}

declareStreamExtractor(ParticleList& p) {
  s >> p.numberOfParticles;
  s >> pcxx::ds::array(p.mass, p.numberOfParticles);
  s >> pcxx::ds::array(p.position, p.numberOfParticles);
}

void fillGrid(coll::Collection<ParticleList>& g) {
  g.forEachLocal([](ParticleList& p, std::int64_t i) {
    p.numberOfParticles = static_cast<int>(1 + i % 5);
    p.mass = new double[static_cast<size_t>(p.numberOfParticles)];
    p.position = new Position[static_cast<size_t>(p.numberOfParticles)];
    for (int k = 0; k < p.numberOfParticles; ++k) {
      p.mass[k] = 100.0 * static_cast<double>(i) + k;
      p.position[k] = Position{static_cast<double>(i), static_cast<double>(k),
                               static_cast<double>(i + k)};
    }
  });
}

TEST(Figure3, OutputThenInputProgram) {
  pfs::Pfs fs = test::memFs();
  rt::Machine machine(4);

  // Output program.
  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Align a(12, "[ALIGN(dummy[i], d[i])]");
    coll::Collection<ParticleList> g(&d, &a);
    fillGrid(g);

    ds::OStream s(fs, &d, &a, "wholeGridFile");
    s << g;
    s << g.field(&ParticleList::numberOfParticles);
    s.write();
  });

  // Input program.
  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Align a(12, "[ALIGN(dummy[i], d[i])]");
    coll::Collection<ParticleList> g(&d, &a);
    coll::Collection<ParticleList> counts(&d, &a);

    ds::IStream s(fs, &d, &a, "wholeGridFile");
    s.read();
    s >> g;
    // Extract only the numberOfParticles field into a second collection.
    s >> counts.field(&ParticleList::numberOfParticles);

    g.forEachLocal([](ParticleList& p, std::int64_t i) {
      const int expected = static_cast<int>(1 + i % 5);
      EXPECT_EQ(p.numberOfParticles, expected);
      for (int k = 0; k < p.numberOfParticles; ++k) {
        EXPECT_DOUBLE_EQ(p.mass[k], 100.0 * static_cast<double>(i) + k);
        const Position want{static_cast<double>(i), static_cast<double>(k),
                            static_cast<double>(i + k)};
        EXPECT_EQ(p.position[k], want);
      }
    });
    counts.forEachLocal([](ParticleList& p, std::int64_t i) {
      EXPECT_EQ(p.numberOfParticles, static_cast<int>(1 + i % 5));
    });
  });
}

TEST(Figure3, UnsortedReadSameLayoutPreservesOrder) {
  pfs::Pfs fs = test::memFs();
  rt::Machine machine(3);

  machine.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(10, &P, coll::DistKind::Block);
    coll::Collection<ParticleList> g(&d);
    fillGrid(g);
    ds::OStream s(fs, &d, "unsortedFile");
    s << g;
    s.write();

    coll::Collection<ParticleList> h(&d);
    ds::IStream in(fs, &d, "unsortedFile");
    in.unsortedRead();
    in >> h;
    // Same layout: unsortedRead coincides with read (file order == local
    // order), so indices line up deterministically.
    h.forEachLocal([](ParticleList& p, std::int64_t i) {
      EXPECT_EQ(p.numberOfParticles, static_cast<int>(1 + i % 5));
    });
  });
}

}  // namespace
