// Randomized differential testing: for each seed, generate a random file —
// random element counts, distributions, alignments, insert shapes (whole
// collections and fields, fixed and variable sizes), header policies,
// checksum settings, and multiple records — write it on a random node
// count, read it back on ANOTHER random node count/distribution with
// read(), and compare every value against an in-memory reference model.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/util/rng.h"
#include "tests/common/test_helpers.h"

namespace pcxxfuzz {

using namespace pcxx;

struct FuzzElem {
  std::int32_t id = 0;
  std::int32_t n = 0;
  double* payload = nullptr;
  std::vector<std::int16_t> extras;
  ~FuzzElem() { delete[] payload; }
  FuzzElem() = default;
  FuzzElem(const FuzzElem&) = delete;
  FuzzElem& operator=(const FuzzElem&) = delete;
};

declareStreamInserter(FuzzElem& e) {
  s << e.id;
  s << e.n;
  s << pcxx::ds::array(e.payload, e.n);
  s << e.extras;
}
declareStreamExtractor(FuzzElem& e) {
  s >> e.id;
  // Reallocation idiom for raw arrays: an existing allocation is only
  // reusable if the incoming count matches (see element_io.h).
  std::int32_t n = 0;
  s >> n;
  if (n != e.n) {
    delete[] e.payload;
    e.payload = n > 0 ? new double[static_cast<size_t>(n)] : nullptr;
    e.n = n;
  }
  s >> pcxx::ds::array(e.payload, e.n);
  s >> e.extras;
}

/// The reference model: plain host-side values for element g of record r.
struct RefElem {
  std::int32_t id;
  std::int32_t n;
  std::vector<double> payload;
  std::vector<std::int16_t> extras;
  double fieldValue;  // for the field insert
};

RefElem referenceFor(std::uint64_t seed, int record, std::int64_t g) {
  Rng rng(seed ^ (0x517CC1B727220A95ull * static_cast<std::uint64_t>(
                                              (record + 1) * 1000003 + g)));
  RefElem ref;
  ref.id = static_cast<std::int32_t>(rng.uniformInt(-1000000, 1000000));
  ref.n = static_cast<std::int32_t>(rng.uniformInt(0, 9));
  ref.payload.resize(static_cast<size_t>(ref.n));
  for (double& v : ref.payload) v = rng.uniform(-1e6, 1e6);
  ref.extras.resize(static_cast<size_t>(rng.uniformInt(0, 4)));
  for (auto& v : ref.extras) {
    v = static_cast<std::int16_t>(rng.uniformInt(-30000, 30000));
  }
  ref.fieldValue = rng.uniform(0.0, 1.0);
  return ref;
}

void fillFromReference(coll::Collection<FuzzElem>& c, std::uint64_t seed,
                       int record) {
  c.forEachLocal([&](FuzzElem& e, std::int64_t g) {
    const RefElem ref = referenceFor(seed, record, g);
    e.id = ref.id;
    e.n = ref.n;
    delete[] e.payload;
    e.payload = ref.n > 0 ? new double[static_cast<size_t>(ref.n)] : nullptr;
    for (int k = 0; k < ref.n; ++k) e.payload[k] = ref.payload[static_cast<size_t>(k)];
    e.extras = ref.extras;
  });
}

std::int64_t compareToReference(coll::Collection<FuzzElem>& c,
                                std::uint64_t seed, int record) {
  std::int64_t bad = 0;
  c.forEachLocal([&](FuzzElem& e, std::int64_t g) {
    const RefElem ref = referenceFor(seed, record, g);
    if (e.id != ref.id || e.n != ref.n || e.extras != ref.extras) {
      ++bad;
      return;
    }
    for (int k = 0; k < ref.n; ++k) {
      if (e.payload[k] != ref.payload[static_cast<size_t>(k)]) ++bad;
    }
  });
  return bad;
}

struct FieldHolder {
  double value = 0.0;
};

coll::DistKind pickKind(Rng& rng) {
  switch (rng.uniformInt(0, 2)) {
    case 0: return coll::DistKind::Block;
    case 1: return coll::DistKind::Cyclic;
    default: return coll::DistKind::BlockCyclic;
  }
}

class FuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRoundTrip, RandomFileMatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  const std::int64_t elements = rng.uniformInt(1, 60);
  const int writerProcs = static_cast<int>(rng.uniformInt(1, 6));
  const int readerProcs = static_cast<int>(rng.uniformInt(1, 6));
  const coll::DistKind writerKind = pickKind(rng);
  const coll::DistKind readerKind = pickKind(rng);
  const std::int64_t writerBlock = rng.uniformInt(1, 4);
  const std::int64_t readerBlock = rng.uniformInt(1, 4);
  const int records = static_cast<int>(rng.uniformInt(1, 3));
  const bool withField = rng.uniformInt(0, 1) == 1;

  ds::StreamOptions so;
  so.checksumData = rng.uniformInt(0, 1) == 1;
  so.headerPolicy = static_cast<ds::StreamOptions::HeaderPolicy>(
      rng.uniformInt(0, 2));

  pfs::Pfs fs = test::memFs();

  // Writer machine.
  {
    rt::Machine m(writerProcs);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(elements, &P, writerKind, writerBlock);
      coll::Collection<FuzzElem> data(&d);
      coll::Collection<FieldHolder> fields(&d);
      ds::OStream s(fs, &d, "fuzz", so);
      for (int r = 0; r < records; ++r) {
        fillFromReference(data, seed, r);
        fields.forEachLocal([&](FieldHolder& h, std::int64_t g) {
          h.value = referenceFor(seed, r, g).fieldValue;
        });
        s << data;
        if (withField) {
          s << fields.field(&FieldHolder::value);
        }
        s.write();
      }
    });
  }

  // Reader machine (possibly different node count + distribution).
  std::atomic<std::int64_t> totalBad{0};
  {
    rt::Machine m(readerProcs);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(elements, &P, readerKind, readerBlock);
      coll::Collection<FuzzElem> data(&d);
      coll::Collection<FieldHolder> fields(&d);
      ds::IStream s(fs, &d, "fuzz");
      for (int r = 0; r < records; ++r) {
        s.read();
        s >> data;
        if (withField) {
          s >> fields.field(&FieldHolder::value);
        }
        totalBad.fetch_add(compareToReference(data, seed, r));
        if (withField) {
          fields.forEachLocal([&](FieldHolder& h, std::int64_t g) {
            if (h.value != referenceFor(seed, r, g).fieldValue) {
              totalBad.fetch_add(1);
            }
          });
        }
      }
      EXPECT_TRUE(s.atEnd());
    });
  }
  EXPECT_EQ(totalBad.load(), 0)
      << "seed " << seed << ": " << elements << " elements, writer "
      << writerProcs << " nodes " << coll::distKindName(writerKind)
      << " -> reader " << readerProcs << " nodes "
      << coll::distKindName(readerKind);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace pcxxfuzz
