// Interleaving (paper §3, §4.1): consecutive inserts with one write place
// corresponding element data contiguously in the file — verified at the
// byte level, since that contiguity is the feature visualization tools
// depend on.
#include <gtest/gtest.h>

#include <cstring>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct Cell {
  int count = 0;
  double density = 0.0;
};

/// Return the raw data section of the (single) record in `name`.
ByteBuffer dataSection(pfs::Pfs& fs, const std::string& name,
                       std::int64_t elements) {
  ByteBuffer out;
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, name, pfs::OpenMode::Read);
    Byte prefix[8];
    f->readAt(node, ds::kFileHeaderBytes, prefix);
    const std::uint64_t hdrLen = ds::RecordHeader::encodedLength(prefix);
    const std::uint64_t dataStart = ds::kFileHeaderBytes + hdrLen +
                                    8ull * static_cast<std::uint64_t>(
                                               elements);
    out.resize(static_cast<size_t>(f->size() - dataStart));
    f->readAt(node, dataStart, out);
  });
  return out;
}

TEST(Interleave, TwoFieldsLandContiguouslyPerElement) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 12;
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<Cell> g(&d);
    coll::Collection<Cell> g2(&d);
    g.forEachLocal([](Cell& c, std::int64_t i) {
      c.count = static_cast<int>(i);
    });
    g2.forEachLocal([](Cell& c, std::int64_t i) {
      c.density = 0.5 * static_cast<double>(i);
    });
    // No index footer: dataSection() slices the raw bytes between the size
    // table and end of file, so the record data must be the last thing in it.
    ds::StreamOptions so;
    so.indexFooter = false;
    ds::OStream s(fs, &d, "il", so);
    s << g.field(&Cell::count);
    s << g2.field(&Cell::density);
    s.write();
  });

  // BLOCK distribution => file order == global order. Per element:
  // [int count][double density], with values from the TWO collections.
  const ByteBuffer data = dataSection(fs, "il", n);
  ASSERT_EQ(data.size(), static_cast<size_t>(n) * (4 + 8));
  for (std::int64_t i = 0; i < n; ++i) {
    const Byte* p = data.data() + static_cast<size_t>(i) * 12;
    int count;
    double density;
    std::memcpy(&count, p, 4);
    std::memcpy(&density, p + 4, 8);
    EXPECT_EQ(count, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(density, 0.5 * static_cast<double>(i));
  }
}

TEST(Interleave, SeparateWritesProduceSeparateRecords) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 6;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<Cell> g(&d);
    g.forEachLocal([](Cell& c, std::int64_t i) {
      c.count = static_cast<int>(i);
      c.density = static_cast<double>(i);
    });
    ds::OStream s(fs, &d, "tworecs");
    s << g.field(&Cell::count);
    s.write();
    s << g.field(&Cell::density);
    s.write();
    EXPECT_EQ(s.recordsWritten(), 2u);

    // Read both records back independently.
    coll::Collection<Cell> a(&d);
    coll::Collection<Cell> b(&d);
    ds::IStream in(fs, &d, "tworecs");
    in.read();
    in >> a.field(&Cell::count);
    EXPECT_FALSE(in.atEnd());
    in.read();
    in >> b.field(&Cell::density);
    EXPECT_TRUE(in.atEnd());
    a.forEachLocal([](Cell& c, std::int64_t i) {
      EXPECT_EQ(c.count, static_cast<int>(i));
    });
    b.forEachLocal([](Cell& c, std::int64_t i) {
      EXPECT_DOUBLE_EQ(c.density, static_cast<double>(i));
    });
  });
}

TEST(Interleave, FieldsFromTwoCollectionsExtractIntoTwoCollections) {
  // The paper's g / g2 example end to end: numberOfParticles from g and
  // particleDensity from g2 written interleaved, extracted back into
  // separate collections.
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 10;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Cyclic);
    coll::Collection<Cell> g(&d);
    coll::Collection<Cell> g2(&d);
    g.forEachLocal([](Cell& c, std::int64_t i) {
      c.count = static_cast<int>(i * 3);
    });
    g2.forEachLocal([](Cell& c, std::int64_t i) {
      c.density = static_cast<double>(i) * 1.25;
    });
    {
      ds::OStream s(fs, &d, "gg2");
      s << g.field(&Cell::count);
      s << g2.field(&Cell::density);
      s.write();
    }
    coll::Collection<Cell> h(&d);
    coll::Collection<Cell> h2(&d);
    ds::IStream in(fs, &d, "gg2");
    in.read();
    in >> h.field(&Cell::count);
    in >> h2.field(&Cell::density);
    h.forEachLocal([](Cell& c, std::int64_t i) {
      EXPECT_EQ(c.count, static_cast<int>(i * 3));
    });
    h2.forEachLocal([](Cell& c, std::int64_t i) {
      EXPECT_DOUBLE_EQ(c.density, static_cast<double>(i) * 1.25);
    });
  });
}

TEST(Interleave, WholeCollectionPlusFieldInterleaved) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 8;
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(n, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    coll::Collection<Cell> g2(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    g2.forEachLocal([](Cell& c, std::int64_t i) {
      c.density = static_cast<double>(i);
    });
    {
      ds::OStream s(fs, &d, "mix");
      s << g;                              // whole collection of ints
      s << g2.field(&Cell::density);       // field of another collection
      s.write();
    }
    coll::Collection<int> h(&d);
    coll::Collection<Cell> h2(&d);
    ds::IStream in(fs, &d, "mix");
    in.read();
    in >> h;
    in >> h2.field(&Cell::density);
    h.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
    h2.forEachLocal([](Cell& c, std::int64_t i) {
      EXPECT_DOUBLE_EQ(c.density, static_cast<double>(i));
    });
  });
}

TEST(Interleave, GatheredAndParallelModesProduceIdenticalBytes) {
  // DESIGN.md promises the byte layout is identical for both header
  // strategies; interleaving must not depend on the mode.
  pfs::Pfs fs = test::memFs();
  const std::int64_t n = 12;
  for (auto policy : {ds::StreamOptions::HeaderPolicy::ForceGathered,
                      ds::StreamOptions::HeaderPolicy::ForceParallel}) {
    rt::Machine m(3);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(n, &P, coll::DistKind::Block);
      coll::Collection<Cell> g(&d);
      g.forEachLocal([](Cell& c, std::int64_t i) {
        c.count = static_cast<int>(i);
        c.density = static_cast<double>(i);
      });
      ds::StreamOptions so;
      so.headerPolicy = policy;
      ds::OStream s(fs, &d,
                    policy == ds::StreamOptions::HeaderPolicy::ForceGathered
                        ? "modeG"
                        : "modeP",
                    so);
      s << g.field(&Cell::count);
      s << g.field(&Cell::density);
      s.write();
    });
  }
  const ByteBuffer a = dataSection(fs, "modeG", n);
  const ByteBuffer b = dataSection(fs, "modeP", n);
  EXPECT_EQ(a, b);
}

}  // namespace
