// Multi-record files, append mode, shared files with several streams of
// differing distributions, and atEnd() iteration.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(MultiRecord, ManyRecordsReadBackInOrder) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  const int kRecords = 5;
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    {
      ds::OStream s(fs, &d, "many");
      for (int rec = 0; rec < kRecords; ++rec) {
        g.forEachLocal([rec](int& v, std::int64_t i) {
          v = static_cast<int>(rec * 1000 + i);
        });
        s << g;
        s.write();
      }
      EXPECT_EQ(s.recordsWritten(), static_cast<std::uint32_t>(kRecords));
    }
    ds::IStream in(fs, &d, "many");
    int rec = 0;
    while (!in.atEnd()) {
      in.read();
      EXPECT_EQ(in.currentRecord().seq, static_cast<std::uint32_t>(rec));
      coll::Collection<int> h(&d);
      in >> h;
      h.forEachLocal([rec](int& v, std::int64_t i) {
        EXPECT_EQ(v, static_cast<int>(rec * 1000 + i));
      });
      ++rec;
    }
    EXPECT_EQ(rec, kRecords);
  });
}

TEST(MultiRecord, AppendModeAddsRecordsToExistingFile) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  // First session.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    ds::OStream s(fs, &d, "appended");
    s << g;
    s.write();
  });
  // Second session appends.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) {
      v = static_cast<int>(100 + i);
    });
    ds::StreamOptions so;
    so.append = true;
    ds::OStream s(fs, &d, "appended", so);
    s << g;
    s.write();
  });
  // Both records present.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> a(&d);
    coll::Collection<int> b(&d);
    ds::IStream in(fs, &d, "appended");
    in.read();
    in >> a;
    in.read();
    in >> b;
    EXPECT_TRUE(in.atEnd());
    a.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
    b.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(100 + i));
    });
  });
}

TEST(MultiRecord, AppendToMissingFileCreatesIt) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::StreamOptions so;
    so.append = true;
    ds::OStream s(fs, &d, "fresh", so);
    s << g;
    s.write();
  });
  EXPECT_TRUE(fs.exists("fresh"));
}

TEST(MultiRecord, SharedFileWithDifferingDistributions) {
  // "Multiple d/streams may be set up and connected to the same file if
  // collections with differing distributions and alignments are to be
  // output." (paper §4.1)
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution dBlock(8, &P, coll::DistKind::Block);
    coll::Distribution dCyclic(12, &P, coll::DistKind::Cyclic);
    coll::Collection<int> a(&dBlock);
    coll::Collection<double> b(&dCyclic);
    a.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    b.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i) * 2.5;
    });

    // One shared underlying file, two output streams with different
    // layouts writing alternating records.
    auto file = fs.open(node, "sharedFile", pfs::OpenMode::Create);
    if (node.id() == 0) {
      file->writeAt(node, 0, ds::encodeFileHeader());
    }
    file->seekShared(node, ds::kFileHeaderBytes);
    {
      ds::OStream sa(fs, file, coll::Layout(dBlock));
      ds::OStream sb(fs, file, coll::Layout(dCyclic));
      sa << a;
      sa.write();
      sb << b;
      sb.write();
      sa << a;
      sa.write();
    }

    // Read the records back with matching input streams.
    file->seekShared(node, ds::kFileHeaderBytes);
    ds::IStream ia(fs, file, coll::Layout(dBlock));
    ds::IStream ib(fs, file, coll::Layout(dCyclic));
    coll::Collection<int> a2(&dBlock);
    coll::Collection<double> b2(&dCyclic);
    ia.read();
    ia >> a2;
    ib.read();
    ib >> b2;
    ia.read();
    ia >> a2;
    a2.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
    b2.forEachLocal([](double& v, std::int64_t i) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(i) * 2.5);
    });
  });
}

TEST(MultiRecord, RecordsWithDifferentInsertShapes) {
  // Record 0: one collection insert; record 1: three inserts interleaved.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Cyclic);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    {
      ds::OStream s(fs, &d, "shapes");
      s << g;
      s.write();
      s << g;
      s << g;
      s << g;
      s.write();
    }
    ds::IStream in(fs, &d, "shapes");
    in.read();
    EXPECT_EQ(in.currentRecord().inserts.size(), 1u);
    coll::Collection<int> h(&d);
    in >> h;
    in.read();
    EXPECT_EQ(in.currentRecord().inserts.size(), 3u);
    in >> h;
    in >> h;
    in >> h;
    h.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
  });
}

TEST(MultiRecord, SyncOnWriteIsDurable) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::StreamOptions so;
    so.syncOnWrite = true;
    ds::OStream s(fs, &d, "durable", so);
    s << g;
    EXPECT_NO_THROW(s.write());
  });
}

}  // namespace
