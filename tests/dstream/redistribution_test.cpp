// The paper's headline read() feature: a file written under one node count
// and distribution is read back correctly under ANOTHER — "the library does
// the paperwork involved in determining the structure of the data that was
// written, reading it in correctly regardless of differences in the number
// of processors and distribution of the reading and writing arrays" (§4.1).
#include <gtest/gtest.h>

#include <tuple>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct VarElem {
  int n = 0;
  double* data = nullptr;
  ~VarElem() { delete[] data; }
  VarElem() = default;
  VarElem(const VarElem&) = delete;
  VarElem& operator=(const VarElem&) = delete;
};

declareStreamInserter(VarElem& e) {
  s << e.n;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(VarElem& e) {
  s >> e.n;
  s >> pcxx::ds::array(e.data, e.n);
}

int sizeFor(std::int64_t g) { return static_cast<int>(1 + (g * 5) % 9); }

void writeFile(pfs::Pfs& fs, int nprocs, coll::DistKind kind,
               std::int64_t elements, const char* name) {
  rt::Machine m(nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, kind, 3);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) {
      e.n = sizeFor(g);
      e.data = new double[static_cast<size_t>(e.n)];
      for (int k = 0; k < e.n; ++k) {
        e.data[k] = static_cast<double>(g * 1000 + k);
      }
    });
    ds::OStream s(fs, &d, name);
    s << out;
    s.write();
  });
}

std::int64_t readAndVerify(pfs::Pfs& fs, int nprocs, coll::DistKind kind,
                           std::int64_t elements, const char* name) {
  std::atomic<std::int64_t> bad{0};
  rt::Machine m(nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, kind, 3);
    coll::Collection<VarElem> in(&d);
    ds::IStream s(fs, &d, name);
    s.read();
    s >> in;
    in.forEachLocal([&](VarElem& e, std::int64_t g) {
      if (e.n != sizeFor(g)) {
        bad.fetch_add(1);
        return;
      }
      for (int k = 0; k < e.n; ++k) {
        if (e.data[k] != static_cast<double>(g * 1000 + k)) bad.fetch_add(1);
      }
    });
  });
  return bad.load();
}

// Write (nprocsW, kindW) -> read (nprocsR, kindR).
using Case = std::tuple<int, coll::DistKind, int, coll::DistKind>;

class Redistribution : public ::testing::TestWithParam<Case> {};

TEST_P(Redistribution, SortedReadRestoresElementOrder) {
  const auto [pw, kw, pr, kr] = GetParam();
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 37;  // deliberately not divisible
  writeFile(fs, pw, kw, elements, "redist");
  EXPECT_EQ(readAndVerify(fs, pr, kr, elements, "redist"), 0)
      << "write " << pw << " nodes " << coll::distKindName(kw) << " -> read "
      << pr << " nodes " << coll::distKindName(kr);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Redistribution,
    ::testing::Values(
        // Same layout (fast path, no communication).
        Case{4, coll::DistKind::Block, 4, coll::DistKind::Block},
        // Distribution change, same node count.
        Case{4, coll::DistKind::Block, 4, coll::DistKind::Cyclic},
        Case{4, coll::DistKind::Cyclic, 4, coll::DistKind::BlockCyclic},
        // Node count change, same distribution.
        Case{8, coll::DistKind::Block, 2, coll::DistKind::Block},
        Case{2, coll::DistKind::Cyclic, 8, coll::DistKind::Cyclic},
        Case{1, coll::DistKind::Block, 6, coll::DistKind::Block},
        Case{6, coll::DistKind::Block, 1, coll::DistKind::Block},
        // Both change.
        Case{3, coll::DistKind::Cyclic, 5, coll::DistKind::Block},
        Case{5, coll::DistKind::BlockCyclic, 3, coll::DistKind::Cyclic}));

TEST(Redistribution, AlignmentChangeAlsoRedistributes) {
  // Written with identity alignment, read with a stride-2 alignment onto a
  // larger template — element *order* is still by global collection index.
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 12;
  writeFile(fs, 4, coll::DistKind::Block, elements, "al");

  std::atomic<std::int64_t> bad{0};
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(24, &P, coll::DistKind::Block);
    coll::Align a(12, 2, 0);
    coll::Collection<VarElem> in(&d, &a);
    ds::IStream s(fs, &d, &a, "al");
    s.read();
    s >> in;
    in.forEachLocal([&](VarElem& e, std::int64_t g) {
      if (e.n != sizeFor(g)) bad.fetch_add(1);
      for (int k = 0; k < e.n; ++k) {
        if (e.data[k] != static_cast<double>(g * 1000 + k)) bad.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Redistribution, RecordHeaderExposesWriterLayout) {
  pfs::Pfs fs = test::memFs();
  writeFile(fs, 4, coll::DistKind::Cyclic, 20, "hdr");
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(20, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "hdr");
    s.read();
    const ds::RecordHeader& h = s.currentRecord();
    EXPECT_EQ(h.layout.nprocs(), 4);
    EXPECT_EQ(h.layout.distribution().kind(), coll::DistKind::Cyclic);
    EXPECT_EQ(h.elementCount(), 20);
  });
}

TEST(Redistribution, ManyToOneGathersWholeCollection) {
  // Read on a single node: everything is "redistributed" to node 0.
  pfs::Pfs fs = test::memFs();
  writeFile(fs, 8, coll::DistKind::Cyclic, 64, "gather");
  EXPECT_EQ(readAndVerify(fs, 1, coll::DistKind::Block, 64, "gather"), 0);
}

}  // namespace
