// Property sweep: a write/read round trip is the identity for variable-size
// elements across distribution kinds, node counts, element counts, and
// header policies.
#include <gtest/gtest.h>

#include <tuple>

#include "src/dstream/dstream.h"
#include "src/util/rng.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct VarElem {
  int n = 0;
  double* data = nullptr;
  std::int64_t stamp = 0;
  ~VarElem() { delete[] data; }
  VarElem() = default;
  VarElem(const VarElem&) = delete;
  VarElem& operator=(const VarElem&) = delete;
};

declareStreamInserter(VarElem& e) {
  s << e.n;
  s << e.stamp;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(VarElem& e) {
  s >> e.n;
  s >> e.stamp;
  s >> pcxx::ds::array(e.data, e.n);
}

/// Deterministic variable size for element g: 0..12 doubles.
int sizeFor(std::int64_t g) { return static_cast<int>((g * 7 + 3) % 13); }

void fill(coll::Collection<VarElem>& c) {
  c.forEachLocal([](VarElem& e, std::int64_t g) {
    e.n = sizeFor(g);
    e.stamp = g * 31;
    delete[] e.data;
    e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
    for (int k = 0; k < e.n; ++k) {
      e.data[k] = static_cast<double>(g) + 0.001 * k;
    }
  });
}

std::int64_t verify(coll::Collection<VarElem>& c) {
  std::int64_t bad = 0;
  c.forEachLocal([&](VarElem& e, std::int64_t g) {
    if (e.n != sizeFor(g) || e.stamp != g * 31) {
      ++bad;
      return;
    }
    for (int k = 0; k < e.n; ++k) {
      if (e.data[k] != static_cast<double>(g) + 0.001 * k) ++bad;
    }
  });
  return bad;
}

using Case = std::tuple<coll::DistKind, int, std::int64_t, int>;

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, WriteReadIsIdentity) {
  const auto [kind, nprocs, elements, policy] = GetParam();
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);
  std::atomic<std::int64_t> totalBad{0};
  m.run([&, kindCopy = kind, elementsCopy = elements,
         policyCopy = policy](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elementsCopy, &P, kindCopy, /*blockSize=*/2);
    coll::Collection<VarElem> out(&d);
    fill(out);

    ds::StreamOptions so;
    so.headerPolicy =
        static_cast<ds::StreamOptions::HeaderPolicy>(policyCopy);
    ds::OStream s(fs, &d, "prop", so);
    s << out;
    s.write();

    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "prop");
    is.read();
    is >> in;
    totalBad.fetch_add(verify(in));
  });
  EXPECT_EQ(totalBad.load(), 0);
}

TEST_P(RoundTrip, UnsortedReadDeliversSameMultiset) {
  const auto [kind, nprocs, elements, policy] = GetParam();
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);

  // Sum over a commutative hash of element content must be preserved no
  // matter how unsortedRead permutes elements across nodes.
  std::atomic<std::uint64_t> writtenHash{0};
  std::atomic<std::uint64_t> readHash{0};
  auto hashElem = [](const VarElem& e) {
    std::uint64_t h = static_cast<std::uint64_t>(e.stamp) * 2654435761u +
                      static_cast<std::uint64_t>(e.n);
    for (int k = 0; k < e.n; ++k) {
      std::uint64_t bits;
      std::memcpy(&bits, &e.data[k], 8);
      h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6);
    }
    return h;
  };

  m.run([&, kindCopy = kind, elementsCopy = elements,
         policyCopy = policy](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elementsCopy, &P, kindCopy, /*blockSize=*/2);
    coll::Collection<VarElem> out(&d);
    fill(out);
    out.forEachLocal([&](VarElem& e, std::int64_t) {
      writtenHash.fetch_add(hashElem(e));
    });

    ds::StreamOptions so;
    so.headerPolicy =
        static_cast<ds::StreamOptions::HeaderPolicy>(policyCopy);
    ds::OStream s(fs, &d, "prop_u", so);
    s << out;
    s.write();

    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "prop_u");
    is.unsortedRead();
    is >> in;
    in.forEachLocal([&](VarElem& e, std::int64_t) {
      readHash.fetch_add(hashElem(e));
    });
  });
  EXPECT_EQ(readHash.load(), writtenHash.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTrip,
    ::testing::Combine(
        ::testing::Values(coll::DistKind::Block, coll::DistKind::Cyclic,
                          coll::DistKind::BlockCyclic),
        ::testing::Values(1, 2, 4, 6),
        ::testing::Values<std::int64_t>(1, 5, 24, 100),
        // HeaderPolicy: Auto / ForceGathered / ForceParallel
        ::testing::Values(0, 1, 2)));

TEST(RoundTripEdge, EmptyElementsEverywhere) {
  // Every element has zero-length payload arrays.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) {
      e.n = 0;
      e.stamp = g;
    });
    ds::OStream s(fs, &d, "empty");
    s << out;
    s.write();
    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "empty");
    is.read();
    is >> in;
    in.forEachLocal([](VarElem& e, std::int64_t g) {
      EXPECT_EQ(e.n, 0);
      EXPECT_EQ(e.stamp, g);
      EXPECT_EQ(e.data, nullptr);
    });
  });
}

TEST(RoundTripEdge, HighlySkewedSizes) {
  // One giant element among tiny ones stresses chunk partitioning.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(16, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) {
      e.n = g == 5 ? 10000 : 1;
      e.stamp = g;
      e.data = new double[static_cast<size_t>(e.n)];
      for (int k = 0; k < e.n; ++k) {
        e.data[k] = static_cast<double>(g * 100000 + k);
      }
    });
    ds::OStream s(fs, &d, "skew");
    s << out;
    s.write();
    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "skew");
    is.read();
    is >> in;
    std::int64_t bad = 0;
    in.forEachLocal([&](VarElem& e, std::int64_t g) {
      if (e.n != (g == 5 ? 10000 : 1)) ++bad;
      for (int k = 0; k < e.n; ++k) {
        if (e.data[k] != static_cast<double>(g * 100000 + k)) ++bad;
      }
    });
    EXPECT_EQ(bad, 0);
  });
}

}  // namespace
