// Property sweep: a write/read round trip is the identity for variable-size
// elements across distribution kinds, node counts, element counts, and
// header policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <tuple>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/util/rng.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct VarElem {
  int n = 0;
  double* data = nullptr;
  std::int64_t stamp = 0;
  ~VarElem() { delete[] data; }
  VarElem() = default;
  VarElem(const VarElem&) = delete;
  VarElem& operator=(const VarElem&) = delete;
};

declareStreamInserter(VarElem& e) {
  s << e.n;
  s << e.stamp;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(VarElem& e) {
  s >> e.n;
  s >> e.stamp;
  s >> pcxx::ds::array(e.data, e.n);
}

/// Deterministic variable size for element g: 0..12 doubles.
int sizeFor(std::int64_t g) { return static_cast<int>((g * 7 + 3) % 13); }

void fill(coll::Collection<VarElem>& c) {
  c.forEachLocal([](VarElem& e, std::int64_t g) {
    e.n = sizeFor(g);
    e.stamp = g * 31;
    delete[] e.data;
    e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
    for (int k = 0; k < e.n; ++k) {
      e.data[k] = static_cast<double>(g) + 0.001 * k;
    }
  });
}

std::int64_t verify(coll::Collection<VarElem>& c) {
  std::int64_t bad = 0;
  c.forEachLocal([&](VarElem& e, std::int64_t g) {
    if (e.n != sizeFor(g) || e.stamp != g * 31) {
      ++bad;
      return;
    }
    for (int k = 0; k < e.n; ++k) {
      if (e.data[k] != static_cast<double>(g) + 0.001 * k) ++bad;
    }
  });
  return bad;
}

using Case = std::tuple<coll::DistKind, int, std::int64_t, int>;

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, WriteReadIsIdentity) {
  const auto [kind, nprocs, elements, policy] = GetParam();
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);
  std::atomic<std::int64_t> totalBad{0};
  m.run([&, kindCopy = kind, elementsCopy = elements,
         policyCopy = policy](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elementsCopy, &P, kindCopy, /*blockSize=*/2);
    coll::Collection<VarElem> out(&d);
    fill(out);

    ds::StreamOptions so;
    so.headerPolicy =
        static_cast<ds::StreamOptions::HeaderPolicy>(policyCopy);
    ds::OStream s(fs, &d, "prop", so);
    s << out;
    s.write();

    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "prop");
    is.read();
    is >> in;
    totalBad.fetch_add(verify(in));
  });
  EXPECT_EQ(totalBad.load(), 0);
}

TEST_P(RoundTrip, UnsortedReadDeliversSameMultiset) {
  const auto [kind, nprocs, elements, policy] = GetParam();
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);

  // Sum over a commutative hash of element content must be preserved no
  // matter how unsortedRead permutes elements across nodes.
  std::atomic<std::uint64_t> writtenHash{0};
  std::atomic<std::uint64_t> readHash{0};
  auto hashElem = [](const VarElem& e) {
    std::uint64_t h = static_cast<std::uint64_t>(e.stamp) * 2654435761u +
                      static_cast<std::uint64_t>(e.n);
    for (int k = 0; k < e.n; ++k) {
      std::uint64_t bits;
      std::memcpy(&bits, &e.data[k], 8);
      h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6);
    }
    return h;
  };

  m.run([&, kindCopy = kind, elementsCopy = elements,
         policyCopy = policy](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elementsCopy, &P, kindCopy, /*blockSize=*/2);
    coll::Collection<VarElem> out(&d);
    fill(out);
    out.forEachLocal([&](VarElem& e, std::int64_t) {
      writtenHash.fetch_add(hashElem(e));
    });

    ds::StreamOptions so;
    so.headerPolicy =
        static_cast<ds::StreamOptions::HeaderPolicy>(policyCopy);
    ds::OStream s(fs, &d, "prop_u", so);
    s << out;
    s.write();

    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "prop_u");
    is.unsortedRead();
    is >> in;
    in.forEachLocal([&](VarElem& e, std::int64_t) {
      readHash.fetch_add(hashElem(e));
    });
  });
  EXPECT_EQ(readHash.load(), writtenHash.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTrip,
    ::testing::Combine(
        ::testing::Values(coll::DistKind::Block, coll::DistKind::Cyclic,
                          coll::DistKind::BlockCyclic),
        ::testing::Values(1, 2, 4, 6),
        ::testing::Values<std::int64_t>(1, 5, 24, 100),
        // HeaderPolicy: Auto / ForceGathered / ForceParallel
        ::testing::Values(0, 1, 2)));

/// Commutative content hash: summing it over all elements of a record gives
/// an order-independent fingerprint of the record's data.
std::uint64_t hashVarElem(const VarElem& e) {
  std::uint64_t h = static_cast<std::uint64_t>(e.stamp) * 2654435761u +
                    static_cast<std::uint64_t>(e.n);
  for (int k = 0; k < e.n; ++k) {
    std::uint64_t bits;
    std::memcpy(&bits, &e.data[k], 8);
    h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6);
  }
  return h;
}

/// Record-dependent fill so every record of the file is distinguishable.
void fillFor(coll::Collection<VarElem>& c, int r) {
  c.forEachLocal([r](VarElem& e, std::int64_t g) {
    e.n = sizeFor(g + r);
    e.stamp = g * 31 + r * 1009;
    delete[] e.data;
    e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
    for (int k = 0; k < e.n; ++k) {
      e.data[k] = static_cast<double>(g + r * 1000) + 0.001 * k;
    }
  });
}

/// Everything one seek-equivalence seed decides, derived deterministically.
struct SeekCase {
  int nprocs = 1;
  std::int64_t elements = 1;
  int records = 2;
  coll::DistKind kind = coll::DistKind::Block;
  std::vector<std::uint32_t> order;   // shuffled permutation of all records
  std::vector<std::uint32_t> subset;  // random strict subset, random order
};

SeekCase deriveSeekCase(int seed) {
  Rng rng(0x5EE7ull * 2654435761ull + static_cast<std::uint64_t>(seed));
  SeekCase c;
  c.nprocs = static_cast<int>(rng.uniformInt(1, 4));
  c.elements = rng.uniformInt(1, 40);
  c.records = static_cast<int>(rng.uniformInt(2, 6));
  c.kind = static_cast<coll::DistKind>(rng.uniformInt(0, 2));
  c.order.resize(static_cast<size_t>(c.records));
  for (int r = 0; r < c.records; ++r) {
    c.order[static_cast<size_t>(r)] = static_cast<std::uint32_t>(r);
  }
  for (size_t i = c.order.size(); i > 1; --i) {
    std::swap(c.order[i - 1],
              c.order[static_cast<size_t>(
                  rng.uniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  const int take = static_cast<int>(rng.uniformInt(1, c.records - 1));
  c.subset.assign(c.order.begin(), c.order.begin() + take);
  return c;
}

class SeekEquivalence : public ::testing::TestWithParam<int> {};

// The seeded property behind random access: readRecord(k) in shuffled order,
// readRecords() over a random subset, and chain replay (dsindexUseFooter =
// false) all deliver exactly the bytes a sequential read of record k
// delivers. A failing seed reproduces alone via the env var in the failure
// message: PCXX_SEEK_SEED=<n> ./roundtrip_property_test
TEST_P(SeekEquivalence, ShuffledAndSubsetReadsMatchSequential) {
  const int seed = GetParam();
  if (const char* only = std::getenv("PCXX_SEEK_SEED")) {
    if (seed != std::atoi(only)) GTEST_SKIP() << "PCXX_SEEK_SEED set";
  }
  const SeekCase c = deriveSeekCase(seed);
  SCOPED_TRACE(::testing::Message()
               << "repro: PCXX_SEEK_SEED=" << seed
               << " ./roundtrip_property_test (nprocs=" << c.nprocs
               << " elements=" << c.elements << " records=" << c.records
               << ")");

  pfs::Pfs fs = test::memFs();
  const size_t R = static_cast<size_t>(c.records);
  std::vector<std::atomic<std::uint64_t>> written(R), sequential(R),
      shuffled(R), subsetHash(R), replay(R);

  rt::Machine m(c.nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(c.elements, &P, c.kind, /*blockSize=*/2);
    coll::Collection<VarElem> out(&d);
    ds::OStream s(fs, &d, "seekprop");
    for (int r = 0; r < c.records; ++r) {
      fillFor(out, r);
      out.forEachLocal([&](VarElem& e, std::int64_t) {
        written[static_cast<size_t>(r)].fetch_add(hashVarElem(e));
      });
      s << out;
      s.write();
    }
    s.close();

    coll::Collection<VarElem> in(&d);
    // Element sizes differ per record, so drop the previous allocation
    // before every extraction (the extractor reuses non-null arrays).
    auto resetElems = [&] {
      in.forEachLocal([](VarElem& e, std::int64_t) {
        delete[] e.data;
        e.data = nullptr;
        e.n = 0;
      });
    };
    auto hashInto = [&](std::vector<std::atomic<std::uint64_t>>& sink,
                        std::uint32_t r) {
      in.forEachLocal([&](VarElem& e, std::int64_t) {
        sink[r].fetch_add(hashVarElem(e));
      });
    };

    {  // Sequential baseline.
      ds::IStream is(fs, &d, "seekprop");
      EXPECT_TRUE(is.indexed());
      EXPECT_EQ(is.indexedRecordCount().value_or(0),
                static_cast<std::uint64_t>(c.records));
      for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.records);
           ++r) {
        is.read();
        resetElems();
        is >> in;
        hashInto(sequential, r);
      }
      EXPECT_TRUE(is.atEnd());
    }
    {  // Shuffled random access.
      ds::IStream is(fs, &d, "seekprop");
      for (const std::uint32_t k : c.order) {
        is.readRecord(k);
        resetElems();
        is >> in;
        hashInto(shuffled, k);
      }
    }
    {  // Random subset through readRecords().
      ds::IStream is(fs, &d, "seekprop");
      is.readRecords(c.subset, [&](std::uint32_t k) {
        resetElems();
        is >> in;
        hashInto(subsetHash, k);
      });
    }
    {  // Chain replay: same shuffled access with the index switched off.
      ds::StreamOptions so;
      so.dsindexUseFooter = false;
      ds::IStream is(fs, &d, "seekprop", so);
      EXPECT_FALSE(is.indexed());
      for (const std::uint32_t k : c.order) {
        is.readRecord(k);
        resetElems();
        is >> in;
        hashInto(replay, k);
      }
    }
  });

  for (size_t r = 0; r < R; ++r) {
    EXPECT_EQ(sequential[r].load(), written[r].load()) << "record " << r;
    EXPECT_EQ(shuffled[r].load(), sequential[r].load()) << "record " << r;
    EXPECT_EQ(replay[r].load(), sequential[r].load()) << "record " << r;
  }
  for (const std::uint32_t k : c.subset) {
    EXPECT_EQ(subsetHash[k].load(), sequential[k].load()) << "record " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeekEquivalence, ::testing::Range(0, 8));

TEST(RoundTripEdge, EmptyElementsEverywhere) {
  // Every element has zero-length payload arrays.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) {
      e.n = 0;
      e.stamp = g;
    });
    ds::OStream s(fs, &d, "empty");
    s << out;
    s.write();
    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "empty");
    is.read();
    is >> in;
    in.forEachLocal([](VarElem& e, std::int64_t g) {
      EXPECT_EQ(e.n, 0);
      EXPECT_EQ(e.stamp, g);
      EXPECT_EQ(e.data, nullptr);
    });
  });
}

TEST(RoundTripEdge, HighlySkewedSizes) {
  // One giant element among tiny ones stresses chunk partitioning.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(16, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) {
      e.n = g == 5 ? 10000 : 1;
      e.stamp = g;
      e.data = new double[static_cast<size_t>(e.n)];
      for (int k = 0; k < e.n; ++k) {
        e.data[k] = static_cast<double>(g * 100000 + k);
      }
    });
    ds::OStream s(fs, &d, "skew");
    s << out;
    s.write();
    coll::Collection<VarElem> in(&d);
    ds::IStream is(fs, &d, "skew");
    is.read();
    is >> in;
    std::int64_t bad = 0;
    in.forEachLocal([&](VarElem& e, std::int64_t g) {
      if (e.n != (g == 5 ? 10000 : 1)) ++bad;
      for (int k = 0; k < e.n; ++k) {
        if (e.data[k] != static_cast<double>(g * 100000 + k)) ++bad;
      }
    });
    EXPECT_EQ(bad, 0);
  });
}

}  // namespace
