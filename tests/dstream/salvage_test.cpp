// Torn-write salvage: IStream's salvage mode skips damaged records and
// torn tails while returning every intact record byte-identical, and the
// offline scanFile() reports the same damage without a machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/dstream/inspect.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr std::int64_t kElems = 9;
constexpr int kNodes = 3;

void fill(coll::Collection<double>& c, int record) {
  c.forEachLocal([record](double& v, std::int64_t g) {
    v = static_cast<double>(record * 100 + g);
  });
}

std::int64_t countWrong(coll::Collection<double>& c, int record) {
  std::int64_t bad = 0;
  c.forEachLocal([&](double& v, std::int64_t g) {
    if (v != static_cast<double>(record * 100 + g)) ++bad;
  });
  return bad;
}

/// Write `records` checksummed records to "f.ds" on `fs`; returns the
/// record boundaries [start, end) discovered by an offline inspection.
std::vector<std::pair<std::uint64_t, std::uint64_t>> writeRecords(
    pfs::Pfs& fs, int records) {
  test::runSpmd(kNodes, [&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.checksumData = true;
    ds::OStream s(fs, &d, "f.ds", so);
    for (int r = 0; r < records; ++r) {
      fill(g, r);
      s << g;
      s.write();
    }
  });
  // Copy the bytes out and inspect offline for the record boundaries.
  ByteBuffer bytes;
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "f.ds", pfs::OpenMode::Read);
    bytes.resize(static_cast<size_t>(f->size()));
    EXPECT_EQ(f->readAt(node, 0, bytes), bytes.size());
  });
  pfs::MemStorage image;
  image.writeAt(0, bytes);
  const ds::FileInfo info = ds::inspectFile(image);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (size_t i = 0; i < info.records.size(); ++i) {
    const std::uint64_t start = info.records[i].offset;
    const std::uint64_t end = i + 1 < info.records.size()
                                  ? info.records[i + 1].offset
                                  : bytes.size();
    spans.emplace_back(start, end);
  }
  return spans;
}

/// Salvage-read "f.ds": returns which of `records` indices were recovered
/// with correct contents, plus the stream's report.
std::pair<std::vector<int>, ds::SalvageReport> salvageRead(pfs::Pfs& fs,
                                                           int records) {
  std::vector<int> recovered;
  ds::SalvageReport report;
  test::runSpmd(kNodes, [&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.salvage = true;
    ds::IStream s(fs, &d, "f.ds", so);
    std::vector<int> mine;
    while (!s.atEnd()) {
      s.read();
      if (!s.hasRecord()) break;  // salvage consumed damage to the tail
      s >> g;
      // Identify which record this is by its contents.
      for (int r = 0; r < records; ++r) {
        if (countWrong(g, r) == 0) mine.push_back(r);
      }
    }
    if (node.id() == 0) {
      recovered = mine;
      report = s.salvageReport();
    }
  });
  return {recovered, report};
}

TEST(Salvage, CleanFileReadsEverythingWithEmptyReport) {
  pfs::Pfs fs = test::memFs();
  writeRecords(fs, 3);
  auto [recovered, report] = salvageRead(fs, 3);
  EXPECT_EQ(recovered, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.recordsRecovered, 3u);
  EXPECT_EQ(report.recordsLost, 0u);
}

TEST(Salvage, NonSalvageReadsClaimNoRecoveries) {
  // Regression: recordsRecovered used to be bumped on EVERY successful
  // finishRecord, so a clean reader without salvage enabled reported
  // "recoveries" it never performed. Recovery counts are salvage-mode
  // bookkeeping only.
  pfs::Pfs fs = test::memFs();
  writeRecords(fs, 3);
  ds::SalvageReport cleanReport;
  test::runSpmd(kNodes, [&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::IStream s(fs, &d, "f.ds");  // salvage OFF
    for (int r = 0; r < 3; ++r) {
      s.read();
      s >> g;
      EXPECT_EQ(countWrong(g, r), 0);
    }
    if (node.id() == 0) cleanReport = s.salvageReport();
  });
  EXPECT_EQ(cleanReport.recordsRecovered, 0u);
  EXPECT_EQ(cleanReport.recordsLost, 0u);
  EXPECT_TRUE(cleanReport.clean());

  // The same file under salvage DOES count its records as recovered — the
  // two reports must differ exactly in that counter.
  auto [recovered, report] = salvageRead(fs, 3);
  EXPECT_EQ(recovered, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(report.recordsRecovered, 3u);
}

TEST(Salvage, CorruptMiddleRecordIsSkippedAndReported) {
  pfs::Pfs fs = test::memFs();
  const auto spans = writeRecords(fs, 3);
  ASSERT_EQ(spans.size(), 3u);
  // Flip data bytes in record 1 (near its end: inside the element data,
  // past the header and size table, before the 4-byte CRC trailer).
  const std::uint64_t hit = spans[1].second - 10;
  fs.corruptByte("f.ds", hit, Byte{0xFF});
  fs.corruptByte("f.ds", hit + 1, Byte{0xFF});

  auto [recovered, report] = salvageRead(fs, 3);
  // Records 0 and 2 come back byte-identical; 1 is skipped.
  EXPECT_EQ(recovered, (std::vector<int>{0, 2}));
  EXPECT_EQ(report.recordsRecovered, 2u);
  EXPECT_EQ(report.recordsLost, 1u);
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].offset, spans[1].first);
  EXPECT_EQ(report.damage[0].offset + report.damage[0].bytes,
            spans[1].second);
}

TEST(Salvage, TornTailIsConsumedAndReported) {
  pfs::Pfs fs = test::memFs();
  const auto spans = writeRecords(fs, 3);
  ASSERT_EQ(spans.size(), 3u);
  // Tear the file mid-record-2 (a crash mid-append).
  const std::uint64_t tearAt = spans[2].first + 10;
  fs.truncateFile("f.ds", tearAt);

  auto [recovered, report] = salvageRead(fs, 3);
  EXPECT_EQ(recovered, (std::vector<int>{0, 1}));
  EXPECT_EQ(report.recordsRecovered, 2u);
  EXPECT_EQ(report.recordsLost, 1u);
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].offset, spans[2].first);
}

TEST(Salvage, WithoutSalvageTheSameDamageThrows) {
  pfs::Pfs fs = test::memFs();
  const auto spans = writeRecords(fs, 2);
  fs.truncateFile("f.ds", spans[1].first + 6);
  EXPECT_THROW(
      test::runSpmd(kNodes,
                    [&](rt::Node&) {
                      coll::Processors P;
                      coll::Distribution d(kElems, &P,
                                           coll::DistKind::Block);
                      coll::Collection<double> g(&d);
                      ds::IStream s(fs, &d, "f.ds");
                      s.read();
                      s >> g;
                      s.read();  // hits the torn tail
                      s >> g;
                    }),
      FormatError);
}

TEST(Salvage, ScanFileAgreesWithTheStreamAndFindsThePrefix) {
  pfs::Pfs fs = test::memFs();
  const auto spans = writeRecords(fs, 3);
  const std::uint64_t hit = spans[1].second - 10;  // element data region
  fs.corruptByte("f.ds", hit, Byte{0xFF});
  fs.corruptByte("f.ds", hit + 1, Byte{0xFF});

  ByteBuffer bytes;
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "f.ds", pfs::OpenMode::Read);
    bytes.resize(static_cast<size_t>(f->size()));
    EXPECT_EQ(f->readAt(node, 0, bytes), bytes.size());
  });
  pfs::MemStorage image;
  image.writeAt(0, bytes);

  const ds::ScanResult scan = ds::scanFile(image);
  EXPECT_EQ(scan.report.recordsRecovered, 2u);
  EXPECT_EQ(scan.report.recordsLost, 1u);
  ASSERT_EQ(scan.report.damage.size(), 1u);
  EXPECT_EQ(scan.report.damage[0].offset, spans[1].first);
  // The valid *prefix* ends before the damaged record 1, even though
  // record 2 behind it is intact (a normal reader stops at the damage).
  EXPECT_EQ(scan.validPrefixEnd, spans[1].first);
  ASSERT_EQ(scan.info.records.size(), 2u);
  EXPECT_EQ(scan.info.records[0].offset, spans[0].first);
  EXPECT_EQ(scan.info.records[1].offset, spans[2].first);

  const std::string text = ds::formatSalvageReport(scan.report);
  EXPECT_NE(text.find("2 record(s) recovered"), std::string::npos) << text;
  EXPECT_NE(text.find("1 lost"), std::string::npos) << text;
  EXPECT_NE(text.find("checksum"), std::string::npos) << text;
}

TEST(Salvage, ScanOfACleanFileIsClean) {
  pfs::Pfs fs = test::memFs();
  writeRecords(fs, 2);
  ByteBuffer bytes;
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "f.ds", pfs::OpenMode::Read);
    bytes.resize(static_cast<size_t>(f->size()));
    EXPECT_EQ(f->readAt(node, 0, bytes), bytes.size());
  });
  pfs::MemStorage image;
  image.writeAt(0, bytes);
  const ds::ScanResult scan = ds::scanFile(image);
  EXPECT_TRUE(scan.report.clean());
  EXPECT_EQ(scan.info.records.size(), 2u);
  EXPECT_EQ(scan.validPrefixEnd, bytes.size());
}

}  // namespace
