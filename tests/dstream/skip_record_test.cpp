// Tests for IStream::skipRecord(): cheap navigation over multi-record
// files without transferring element data.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

void writeThreeRecords(pfs::Pfs& fs, bool checksummed) {
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::StreamOptions so;
    so.checksumData = checksummed;
    ds::OStream s(fs, &d, "skippy", so);
    for (int r = 0; r < 3; ++r) {
      g.forEachLocal([r](int& v, std::int64_t i) {
        v = r * 100 + static_cast<int>(i);
      });
      s << g;
      s.write();
    }
  });
}

class SkipRecord : public ::testing::TestWithParam<bool> {};

TEST_P(SkipRecord, SkipsToTheWantedRecord) {
  pfs::Pfs fs = test::memFs();
  writeThreeRecords(fs, GetParam());
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "skippy");
    const ds::RecordHeader h0 = s.skipRecord();
    EXPECT_EQ(h0.seq, 0u);
    const ds::RecordHeader h1 = s.skipRecord();
    EXPECT_EQ(h1.seq, 1u);
    s.read();
    EXPECT_EQ(s.currentRecord().seq, 2u);
    s >> g;
    g.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, 200 + static_cast<int>(i));
    });
    EXPECT_TRUE(s.atEnd());
  });
}

TEST_P(SkipRecord, SkipDiscardsPartialExtraction) {
  pfs::Pfs fs = test::memFs();
  writeThreeRecords(fs, GetParam());
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "skippy");
    s.read();  // record 0, never extracted
    s.skipRecord();  // record 1
    // After a skip, extraction requires a fresh read().
    EXPECT_THROW(s >> g, StateError);
    s.read();  // record 2
    s >> g;
    g.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, 200 + static_cast<int>(i));
    });
  });
}

TEST_P(SkipRecord, SkipPastEndThrows) {
  pfs::Pfs fs = test::memFs();
  writeThreeRecords(fs, GetParam());
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "skippy");
    s.skipRecord();
    s.skipRecord();
    s.skipRecord();
    EXPECT_TRUE(s.atEnd());
    s.skipRecord();
  }),
               FormatError);
}

TEST_P(SkipRecord, SkipIsCheaperThanRead) {
  // Under the Paragon model, skipping a large record must cost far less
  // than reading it (only the header moves).
  pfs::PfsConfig cfg;
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(2000, &P, coll::DistKind::Block);
      coll::Collection<double> g(&d);
      ds::StreamOptions so;
      so.checksumData = GetParam();
      ds::OStream s(fs, &d, "bigskip", so);
      s << g;
      s.write();
      s << g;
      s.write();
    });
  }
  auto timeInput = [&](bool skip) {
    fs.model().reset();
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(2000, &P, coll::DistKind::Block);
      coll::Collection<double> g(&d);
      ds::IStream s(fs, &d, "bigskip");
      if (skip) {
        s.skipRecord();
      } else {
        s.read();
        s >> g;
      }
    });
    return m.maxVirtualTime();
  };
  const double readTime = timeInput(false);
  const double skipTime = timeInput(true);
  EXPECT_LT(skipTime, readTime * 0.7)
      << "skip " << skipTime << " vs read " << readTime;
}

INSTANTIATE_TEST_SUITE_P(PlainAndChecksummed, SkipRecord,
                         ::testing::Bool());

TEST(Rewind, SecondPassReadsTheSameRecords) {
  pfs::Pfs fs = test::memFs();
  writeThreeRecords(fs, false);
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "skippy");
    // First pass: consume everything.
    int firstPass = 0;
    while (!s.atEnd()) {
      s.read();
      s >> g;
      ++firstPass;
    }
    EXPECT_EQ(firstPass, 3);
    // Rewind and re-read record 0.
    s.rewind();
    EXPECT_FALSE(s.atEnd());
    s.read();
    EXPECT_EQ(s.currentRecord().seq, 0u);
    s >> g;
    g.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
  });
}

}  // namespace
