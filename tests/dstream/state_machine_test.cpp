// Enforcement of the Figure 2 d/stream state machines and the §3 usage
// constraints.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(OStreamState, WriteWithoutInsertThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    ds::OStream s(fs, &d, "f");
    s.write();  // no insert yet: not allowed by the state machine
  }),
               StateError);
}

TEST(OStreamState, InsertWriteInsertWriteLoops) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "f");
    for (int round = 0; round < 3; ++round) {
      s << g;
      s << g;  // several inserts per write are fine
      s.write();
    }
    EXPECT_EQ(s.recordsWritten(), 3u);
  });
}

TEST(OStreamState, CloseWithPendingInsertsThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "f");
    s << g;
    s.close();  // pending inserts never written
  }),
               StateError);
}

TEST(OStreamState, OperationsAfterCloseThrow) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(1);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "f");
    s << g;
    s.write();
    s.close();
    s << g;  // closed
  }),
               StateError);
}

TEST(OStreamState, DoubleCloseIsIdempotent) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(1);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::OStream s(fs, &d, "f");
    s << g;
    s.write();
    s.close();
    EXPECT_NO_THROW(s.close());
  });
}

TEST(OStreamState, MismatchedLayoutInsertThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Distribution d2(8, &P, coll::DistKind::Cyclic);
    coll::Collection<int> g(&d2);
    ds::OStream s(fs, &d, "f");
    s << g;  // interleave constraint: layouts must match the stream's
  }),
               UsageError);
}

TEST(OStreamState, MismatchedSizeInsertThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);
    coll::Distribution dSmall(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&dSmall);
    ds::OStream s(fs, &d, "f");
    s << g;
  }),
               UsageError);
}

// ---------------------------------------------------------------------------

void writeIntRecord(pfs::Pfs& fs, rt::Machine& m, const char* name) {
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    ds::OStream s(fs, &d, name);
    s << g;
    s.write();
  });
}

TEST(IStreamState, ExtractBeforeReadThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "f");
    s >> g;  // no read() yet
  }),
               StateError);
}

TEST(IStreamState, MoreExtractsThanInsertsThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "f");
    s.read();
    s >> g;
    s >> g;  // the record has one insert
  }),
               UsageError);
}

TEST(IStreamState, TypeMismatchThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);  // record holds ints
    ds::IStream s(fs, &d, "f");
    s.read();
    s >> g;
  }),
               UsageError);
}

TEST(IStreamState, KindMismatchThrows) {
  struct Cell {
    int n = 0;
  };
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  // Write a FIELD insert.
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<Cell> g(&d);
    ds::OStream s(fs, &d, "f");
    s << g.field(&Cell::n);
    s.write();
  });
  // Attempt a whole-collection extract of the matching scalar type.
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "f");
    s.read();
    s >> g;  // collection extract vs field insert
  }),
               UsageError);
}

TEST(IStreamState, ElementCountMismatchThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(8, &P, coll::DistKind::Block);  // 8 != 6
    ds::IStream s(fs, &d, "f");
    s.read();
  }),
               UsageError);
}

TEST(IStreamState, ReadPastLastRecordThrows) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  EXPECT_THROW(m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::IStream s(fs, &d, "f");
    s.read();
    s >> g;
    EXPECT_TRUE(s.atEnd());
    s.read();  // no second record
  }),
               FormatError);
}

TEST(IStreamState, ReReadWithoutExtractingAllIsAllowed) {
  // Figure 2 allows read -> read (discarding unextracted data).
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  writeIntRecord(fs, m, "f");
  writeIntRecord(fs, m, "f2");
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    // Two records in one file via append.
    ds::StreamOptions app;
    app.append = true;
    {
      ds::OStream s(fs, &d, "f", app);
      coll::Collection<int> h(&d);
      h.forEachLocal([](int& v, std::int64_t i) {
        v = static_cast<int>(1000 + i);
      });
      s << h;
      s.write();
    }
    ds::IStream s(fs, &d, "f");
    s.read();       // first record; never extracted
    s.read();       // second record
    s >> g;
    g.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(1000 + i));
    });
  });
}

TEST(IStreamState, CurrentRecordRequiresRead) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(1);
  writeIntRecord(fs, m, "f");
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    ds::IStream s(fs, &d, "f");
    EXPECT_THROW(s.currentRecord(), UsageError);
    s.read();
    EXPECT_EQ(s.currentRecord().elementCount(), 6);
    EXPECT_EQ(s.currentRecord().inserts.size(), 1u);
  });
}

}  // namespace
