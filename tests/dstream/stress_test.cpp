// Stress tests: large collections, many records, and deep recursion —
// catching accidental quadratic behavior, overflow at scale, and stack
// abuse that small unit tests never see.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(Stress, FiftyThousandElementsRoundTrip) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(50'000, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i) * 0.25;
    });
    {
      ds::StreamOptions so;
      so.checksumData = true;
      ds::OStream s(fs, &d, "big", so);
      s << g;
      s.write();
    }
    // Read under a different distribution: full redistribution of 50k
    // elements.
    coll::Distribution d2(50'000, &P, coll::DistKind::Block);
    coll::Collection<double> h(&d2);
    ds::IStream in(fs, &d2, "big");
    in.read();
    in >> h;
    h.forEachLocal([&](double& v, std::int64_t i) {
      if (v != static_cast<double>(i) * 0.25) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Stress, TwoHundredRecordsInOneFile) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(16, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    {
      ds::OStream s(fs, &d, "manyrec");
      for (int r = 0; r < 200; ++r) {
        g.forEachLocal([r](int& v, std::int64_t i) {
          v = r * 1000 + static_cast<int>(i);
        });
        s << g;
        s.write();
      }
    }
    ds::IStream in(fs, &d, "manyrec");
    int r = 0;
    while (!in.atEnd()) {
      in.read();
      in >> g;
      g.forEachLocal([r](int& v, std::int64_t i) {
        if (v != r * 1000 + static_cast<int>(i)) {
          FAIL() << "record " << r << " element " << i;
        }
      });
      ++r;
    }
    EXPECT_EQ(r, 200);
  });
}

TEST(Stress, MegabyteSingleElement) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Grid2D<double> grid(3, 0, &P);
    grid.forEachLocalRow([](std::int64_t i, std::vector<double>& cells) {
      cells.assign(1 << 17, static_cast<double>(i));  // 1 MiB of doubles
    });
    {
      ds::OStream s(fs, &grid.distribution(), "blob");
      s << grid.collection();
      s.write();
    }
    coll::Grid2D<double> back(3, 0, &P);
    ds::IStream in(fs, &back.distribution(), "blob");
    in.read();
    in >> back.collection();
    back.forEachLocalRow([](std::int64_t i, std::vector<double>& cells) {
      ASSERT_EQ(cells.size(), static_cast<size_t>(1 << 17));
      EXPECT_DOUBLE_EQ(cells.front(), static_cast<double>(i));
      EXPECT_DOUBLE_EQ(cells.back(), static_cast<double>(i));
    });
  });
}

TEST(Stress, SixteenNodeMachine) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(16);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(99, &P, coll::DistKind::Cyclic);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    ds::OStream s(fs, &d, "wide");
    s << g;
    s.write();
    coll::Collection<int> h(&d);
    ds::IStream in(fs, &d, "wide");
    in.read();
    in >> h;
    h.forEachLocal([&](int& v, std::int64_t i) {
      if (v != static_cast<int>(i)) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
