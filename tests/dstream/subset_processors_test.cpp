// Collections on a SUBSET of the machine's nodes (Processors(k) with
// k < machine size): the remaining nodes own nothing but still take part
// in the collective d/stream operations.
#include <gtest/gtest.h>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(SubsetProcessors, NonMemberNodesOwnNothing) {
  rt::Machine m(4);
  m.run([](rt::Node& node) {
    coll::Processors sub(2);
    coll::Distribution d(10, &sub, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    if (node.id() >= 2) {
      EXPECT_EQ(g.localCount(), 0);
    } else {
      EXPECT_EQ(g.localCount(), 5);
    }
  });
}

TEST(SubsetProcessors, StreamRoundTripOnSubset) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(5);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors sub(3);
    coll::Distribution d(14, &sub, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i) * 1.5;
    });
    // All 5 machine nodes participate in the collective write, even though
    // only 3 own data.
    ds::OStream s(fs, &d, "subset");
    s << g;
    s.write();

    coll::Collection<double> h(&d);
    ds::IStream in(fs, &d, "subset");
    in.read();
    in >> h;
    h.forEachLocal([&](double& v, std::int64_t i) {
      if (v != static_cast<double>(i) * 1.5) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(SubsetProcessors, WriteOnSubsetReadOnFullMachine) {
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(6);
    m.run([&](rt::Node&) {
      coll::Processors sub(2);
      coll::Distribution d(12, &sub, coll::DistKind::Block);
      coll::Collection<int> g(&d);
      g.forEachLocal([](int& v, std::int64_t i) {
        v = static_cast<int>(i * 7);
      });
      ds::OStream s(fs, &d, "sub2full");
      s << g;
      s.write();
    });
  }
  rt::Machine m(4);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;  // all 4 nodes this time
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Collection<int> g(&d);
    ds::IStream in(fs, &d, "sub2full");
    in.read();
    in >> g;
    g.forEachLocal([&](int& v, std::int64_t i) {
      if (v != static_cast<int>(i * 7)) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(SubsetProcessors, CheckpointManagerOnSubset) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  m.run([&](rt::Node&) {
    coll::Processors sub(2);
    coll::Distribution d(8, &sub, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = static_cast<double>(i);
    });
    ds::CheckpointManager mgr(fs, ds::CheckpointOptions{});
    mgr.save(g);
    coll::Collection<double> h(&d);
    EXPECT_EQ(mgr.restoreLatest(h), 0);
    h.forEachLocal([](double& v, std::int64_t i) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
    });
  });
}

}  // namespace
