// Element-type coverage: scalars, opted-in trivial structs, std::vector,
// std::string, nested programmer-defined types, recursive trees, and the
// rvalue/arena lifetime rule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "tests/common/test_helpers.h"

namespace pcxxtypes {

using namespace pcxx;

struct Vec3 {
  double x = 0, y = 0, z = 0;
  bool operator==(const Vec3&) const = default;
};

}  // namespace pcxxtypes

// Must precede any inserter that streams a Vec3 by value.
PCXX_STREAM_TRIVIAL(pcxxtypes::Vec3);

namespace pcxxtypes {

using namespace pcxx;

struct Inner {
  int id = 0;
  std::vector<double> samples;
};
declareStreamInserter(Inner& v) {
  s << v.id;
  s << v.samples;
}
declareStreamExtractor(Inner& v) {
  s >> v.id;
  s >> v.samples;
}

struct Outer {
  std::string name;
  Inner inner;       // nested programmer-defined type
  Vec3 direction;    // trivially streamed struct
};
declareStreamInserter(Outer& v) {
  s << v.name;
  s << v.inner;      // recursion through the Inner inserter
  s << v.direction;
}
declareStreamExtractor(Outer& v) {
  s >> v.name;
  s >> v.inner;
  s >> v.direction;
}

struct ListNode {
  int value = 0;
  ListNode* next = nullptr;
  ~ListNode() { delete next; }
};
declareStreamInserter(ListNode& v) {
  s << v.value;
  s << static_cast<std::uint8_t>(v.next != nullptr);
  if (v.next != nullptr) s << *v.next;
}
declareStreamExtractor(ListNode& v) {
  s >> v.value;
  std::uint8_t has = 0;
  s >> has;
  if (has != 0) {
    if (v.next == nullptr) v.next = new ListNode();
    s >> *v.next;
  }
}

}  // namespace pcxxtypes

namespace {

using namespace pcxx;
using pcxxtypes::Inner;
using pcxxtypes::ListNode;
using pcxxtypes::Outer;
using pcxxtypes::Vec3;

template <typename T, typename FillFn, typename CheckFn>
void roundTrip(std::int64_t elements, int nprocs, FillFn fill, CheckFn check) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Collection<T> out(&d);
    out.forEachLocal(fill);
    ds::OStream s(fs, &d, "types");
    s << out;
    s.write();
    coll::Collection<T> in(&d);
    ds::IStream is(fs, &d, "types");
    is.read();
    is >> in;
    in.forEachLocal(check);
  });
}

TEST(Types, ScalarDoubleCollection) {
  roundTrip<double>(
      17, 3,
      [](double& v, std::int64_t g) { v = static_cast<double>(g) * 0.5; },
      [](double& v, std::int64_t g) {
        EXPECT_DOUBLE_EQ(v, static_cast<double>(g) * 0.5);
      });
}

TEST(Types, ScalarBoolAndChar) {
  roundTrip<char>(
      9, 2, [](char& v, std::int64_t g) { v = static_cast<char>('a' + g); },
      [](char& v, std::int64_t g) {
        EXPECT_EQ(v, static_cast<char>('a' + g));
      });
  roundTrip<bool>(
      9, 2, [](bool& v, std::int64_t g) { v = (g % 2) == 0; },
      [](bool& v, std::int64_t g) { EXPECT_EQ(v, (g % 2) == 0); });
}

TEST(Types, TriviallyStreamedStruct) {
  roundTrip<Vec3>(
      10, 2,
      [](Vec3& v, std::int64_t g) {
        v = Vec3{static_cast<double>(g), static_cast<double>(g * 2),
                 static_cast<double>(g * 3)};
      },
      [](Vec3& v, std::int64_t g) {
        EXPECT_EQ(v, (Vec3{static_cast<double>(g), static_cast<double>(g * 2),
                           static_cast<double>(g * 3)}));
      });
}

TEST(Types, VectorsAreSelfDescribing) {
  roundTrip<Inner>(
      11, 4,
      [](Inner& v, std::int64_t g) {
        v.id = static_cast<int>(g);
        v.samples.assign(static_cast<size_t>(g % 5), static_cast<double>(g));
      },
      [](Inner& v, std::int64_t g) {
        EXPECT_EQ(v.id, static_cast<int>(g));
        ASSERT_EQ(v.samples.size(), static_cast<size_t>(g % 5));
        for (double x : v.samples) {
          EXPECT_DOUBLE_EQ(x, static_cast<double>(g));
        }
      });
}

TEST(Types, NestedStructsAndStrings) {
  roundTrip<Outer>(
      8, 2,
      [](Outer& v, std::int64_t g) {
        v.name = "element-" + std::string(static_cast<size_t>(g), 'x');
        v.inner.id = static_cast<int>(g * 7);
        v.inner.samples = {1.0, static_cast<double>(g)};
        v.direction = Vec3{1, 2, static_cast<double>(g)};
      },
      [](Outer& v, std::int64_t g) {
        EXPECT_EQ(v.name, "element-" + std::string(static_cast<size_t>(g),
                                                   'x'));
        EXPECT_EQ(v.inner.id, static_cast<int>(g * 7));
        ASSERT_EQ(v.inner.samples.size(), 2u);
        EXPECT_DOUBLE_EQ(v.inner.samples[1], static_cast<double>(g));
        EXPECT_EQ(v.direction, (Vec3{1, 2, static_cast<double>(g)}));
      });
}

TEST(Types, RecursiveLinkedLists) {
  roundTrip<ListNode>(
      6, 3,
      [](ListNode& v, std::int64_t g) {
        // Element g holds a chain of length g+1.
        v.value = static_cast<int>(g * 100);
        ListNode* cur = &v;
        for (int k = 1; k <= g; ++k) {
          cur->next = new ListNode();
          cur = cur->next;
          cur->value = static_cast<int>(g * 100 + k);
        }
      },
      [](ListNode& v, std::int64_t g) {
        const ListNode* cur = &v;
        for (int k = 0; k <= g; ++k) {
          ASSERT_NE(cur, nullptr) << "chain too short at element " << g;
          EXPECT_EQ(cur->value, static_cast<int>(g * 100 + k));
          cur = cur->next;
        }
        EXPECT_EQ(cur, nullptr) << "chain too long at element " << g;
      });
}

TEST(Types, EmptyStringsAndVectors) {
  roundTrip<Inner>(
      5, 2,
      [](Inner& v, std::int64_t g) {
        v.id = static_cast<int>(g);
        v.samples.clear();
      },
      [](Inner& v, std::int64_t g) {
        EXPECT_EQ(v.id, static_cast<int>(g));
        EXPECT_TRUE(v.samples.empty());
      });
}

}  // namespace

// Namespace-scope ADL functions for the temporaries test.
namespace pcxxtypes {

struct CompactPair {
  int lo = 0;
  int hi = 0;
};
declareStreamInserter(CompactPair& v) {
  // Both entries are computed temporaries: arena-copied at insert time.
  s << (v.lo + v.hi);
  s << (v.hi - v.lo);
}
declareStreamExtractor(CompactPair& v) {
  int sum = 0;
  int diff = 0;
  s >> sum;
  s >> diff;
  v.hi = (sum + diff) / 2;
  v.lo = (sum - diff) / 2;
}

}  // namespace pcxxtypes

namespace {

TEST(Types, TemporariesSurviveUntilWrite) {
  roundTrip<pcxxtypes::CompactPair>(
      12, 3,
      [](pcxxtypes::CompactPair& v, std::int64_t g) {
        v.lo = static_cast<int>(g);
        v.hi = static_cast<int>(g * 3 + 5);
      },
      [](pcxxtypes::CompactPair& v, std::int64_t g) {
        EXPECT_EQ(v.lo, static_cast<int>(g));
        EXPECT_EQ(v.hi, static_cast<int>(g * 3 + 5));
      });
}

TEST(Types, MixedInsertsInOneRecord) {
  // A record holding: whole double collection, whole Inner collection,
  // and an int field — extracted in the same order.
  struct WithField {
    int tag = 0;
  };
  pfs::Pfs fs = pcxx::test::memFs();
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(9, &P, coll::DistKind::Cyclic);
    coll::Collection<double> a(&d);
    coll::Collection<Inner> b(&d);
    coll::Collection<WithField> c(&d);
    a.forEachLocal([](double& v, std::int64_t g) {
      v = static_cast<double>(g);
    });
    b.forEachLocal([](Inner& v, std::int64_t g) {
      v.id = static_cast<int>(g);
      v.samples.assign(1, 2.5);
    });
    c.forEachLocal([](WithField& v, std::int64_t g) {
      v.tag = static_cast<int>(g + 50);
    });
    {
      ds::OStream s(fs, &d, "mixed");
      s << a;
      s << b;
      s << c.field(&WithField::tag);
      s.write();
    }
    coll::Collection<double> a2(&d);
    coll::Collection<Inner> b2(&d);
    coll::Collection<WithField> c2(&d);
    ds::IStream in(fs, &d, "mixed");
    in.read();
    in >> a2;
    in >> b2;
    in >> c2.field(&WithField::tag);
    a2.forEachLocal([](double& v, std::int64_t g) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(g));
    });
    b2.forEachLocal([](Inner& v, std::int64_t g) {
      EXPECT_EQ(v.id, static_cast<int>(g));
      ASSERT_EQ(v.samples.size(), 1u);
    });
    c2.forEachLocal([](WithField& v, std::int64_t g) {
      EXPECT_EQ(v.tag, static_cast<int>(g + 50));
    });
  });
}

}  // namespace
