// Crash-point sweep: replay CheckpointManager::save() with a crash
// injected at EVERY storage op index the save issues (plus mid-op torn
// variants that leave half an op's bytes durable) and assert that
// restoreLatest() still recovers a consistent epoch at every crash point.
//
// This is the paper's checkpointing application (§2) driven to its
// durability contract: "a crash mid-checkpoint always leaves the previous
// epoch recoverable" must hold not just for the crash points a test author
// happened to think of, but for all of them.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/dstream/checkpoint.h"
#include "src/dstream/dstream.h"
#include "src/pfs/fault_plan.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kNodes = 2;
constexpr std::int64_t kElems = 8;

void fill(coll::Collection<double>& c, int epoch) {
  c.forEachLocal([epoch](double& v, std::int64_t g) {
    v = static_cast<double>(epoch * 1000 + g);
  });
}

std::int64_t countWrong(coll::Collection<double>& c, int epoch) {
  std::int64_t bad = 0;
  c.forEachLocal([&](double& v, std::int64_t g) {
    if (v != static_cast<double>(epoch * 1000 + g)) ++bad;
  });
  return bad;
}

void saveEpoch(rt::Machine& m, pfs::Pfs& fs, int epoch,
               const ds::CheckpointOptions& co = {}) {
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    fill(data, epoch);
    ds::CheckpointManager mgr(fs, co);
    mgr.save(data);
  });
}

/// Count the storage ops one save of epoch 1 issues (after a clean epoch 0
/// exists, so the op sequence matches the sweep runs).
std::uint64_t opsPerSave(const ds::CheckpointOptions& co = {}) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(kNodes);
  saveEpoch(m, fs, 0, co);
  const std::uint64_t before = fs.opCount();
  saveEpoch(m, fs, 1, co);
  return fs.opCount() - before;
}

/// One sweep point: crash at the k-th storage op of the epoch-1 save
/// (`durableFraction` of that op's request applied first), then restore.
/// With co.aioQueueDepth > 0 the data flushes run on background threads,
/// so WHICH logical access is the k-th op varies run to run — the
/// durability contract must hold for all interleavings, which is exactly
/// what the sweep then exercises.
void sweepPoint(std::uint64_t k, std::uint64_t totalOps, bool halfDurable,
                const ds::CheckpointOptions& co = {}) {
  pfs::Pfs fs = test::memFs();
  rt::Machine m(kNodes);
  saveEpoch(m, fs, 0, co);
  const std::uint64_t base = fs.opCount();

  bool crashed = false;
  if (k < totalOps) {
    // durableBytes is clamped per-op by pfs, so "half of a large request"
    // approximated as a fixed small prefix exercises torn mid-op states
    // across op sizes.
    pfs::FaultPlan plan;
    plan.crashAtOp(base + k, halfDurable ? 4 : 0);
    fs.setFaultHook(plan.hook());
    try {
      saveEpoch(m, fs, 1, co);
    } catch (const Error&) {
      crashed = true;  // CrashInjected (possibly wrapped by peer aborts)
    }
    fs.setFaultHook(nullptr);
    EXPECT_TRUE(crashed) << "crash point " << k << " never fired";
  } else {
    saveEpoch(m, fs, 1, co);  // the no-crash end of the sweep
  }

  // Whatever the crash point, restore must land on a consistent epoch:
  // either the completed epoch 1 or the prior epoch 0 — never garbage,
  // never "no checkpoint".
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> back(&d);
    ds::CheckpointManager mgr(fs, co);
    const std::int64_t epoch = mgr.restoreLatest(back);
    EXPECT_TRUE(epoch == 0 || epoch == 1)
        << "crash point " << k << " restored epoch " << epoch;
    if (epoch == 0 || epoch == 1) {
      EXPECT_EQ(countWrong(back, static_cast<int>(epoch)), 0)
          << "crash point " << k << " restored inconsistent data for epoch "
          << epoch;
    }
    if (k >= totalOps) {
      EXPECT_EQ(epoch, 1) << "clean save must restore the new epoch";
    }
  });
}

TEST(CrashSweep, EveryCrashPointLeavesARecoverableEpoch) {
  const std::uint64_t total = opsPerSave();
  ASSERT_GT(total, 0u);
  // k == total is the no-crash control point: K + 1 points in all.
  for (std::uint64_t k = 0; k <= total; ++k) {
    SCOPED_TRACE("crash at save op " + std::to_string(k));
    sweepPoint(k, total, /*halfDurable=*/false);
  }
}

TEST(CrashSweep, TornMidOpCrashesAlsoRecover) {
  const std::uint64_t total = opsPerSave();
  ASSERT_GT(total, 0u);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE("torn crash at save op " + std::to_string(k));
    sweepPoint(k, total, /*halfDurable=*/true);
  }
}

#if PCXX_AIO_ENABLED

/// The overlap configuration under sweep: epoch data flushed write-behind,
/// restores prefetching. saveWith drains the stream (explicit close) before
/// the marker moves, so a crash inside a background flush must still leave
/// the previous epoch recoverable.
ds::CheckpointOptions asyncOptions() {
  ds::CheckpointOptions co;
  co.aioQueueDepth = 2;
  co.aioPrefetchDepth = 1;
  return co;
}

TEST(CrashSweep, AsyncEveryCrashPointLeavesARecoverableEpoch) {
  const ds::CheckpointOptions co = asyncOptions();
  const std::uint64_t total = opsPerSave(co);
  ASSERT_GT(total, 0u);
  for (std::uint64_t k = 0; k <= total; ++k) {
    SCOPED_TRACE("async: crash at save op " + std::to_string(k));
    sweepPoint(k, total, /*halfDurable=*/false, co);
  }
}

TEST(CrashSweep, AsyncTornMidOpCrashesAlsoRecover) {
  const ds::CheckpointOptions co = asyncOptions();
  const std::uint64_t total = opsPerSave(co);
  ASSERT_GT(total, 0u);
  for (std::uint64_t k = 0; k < total; ++k) {
    SCOPED_TRACE("async: torn crash at save op " + std::to_string(k));
    sweepPoint(k, total, /*halfDurable=*/true, co);
  }
}

#endif  // PCXX_AIO_ENABLED

}  // namespace
