// Concurrency regression test for the Pfs hook machinery: fault hooks are
// installed, cleared, and fired from different threads while all nodes
// drive I/O. The TSan CI leg turns any unsynchronized access into a hard
// failure; in other legs this still exercises abort-free hot-swapping.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/pfs/fault_plan.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(FaultHookConcurrency, HotSwappingHooksDuringIoIsRaceFree) {
  pfs::Pfs fs = test::memFs();

  // Generous retries so the probabilistic plan's transients are absorbed
  // and the machine never aborts mid-test.
  pfs::RetryPolicy rp;
  rp.maxAttempts = 100;
  rp.backoffBase = 1e-9;
  rp.backoffMax = 1e-6;
  fs.setRetryPolicy(rp);

  pfs::FaultPlan plan(2024);
  plan.failWithProbability(0.02);
  pfs::OpRecorder recorder;

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load()) {
      fs.setFaultHook(plan.hook());
      fs.setObserveHook(recorder.hook());
      fs.setFaultHook([&](const pfs::OpContext& op) {
        recorder.record(op);
        plan.apply(op);
      });
      fs.setFaultHook(nullptr);
      fs.setObserveHook(nullptr);
    }
  });

  test::runSpmd(4, [&](rt::Node& node) {
    auto f = fs.open(node, "hot.bin", pfs::OpenMode::Create);
    ByteBuffer mine(256, static_cast<Byte>(node.id() + 1));
    for (int iter = 0; iter < 50; ++iter) {
      const std::uint64_t off =
          static_cast<std::uint64_t>(node.id()) * 256;
      f->writeAt(node, off, mine);
      ByteBuffer back(256);
      EXPECT_EQ(f->readAt(node, off, back), 256u);
      EXPECT_EQ(back, mine);
      f->writeOrdered(node, mine);  // collective path under the same races
    }
  });

  stop.store(true);
  toggler.join();
  // The recorder and plan stayed internally consistent under the race.
  EXPECT_GE(recorder.count(), 0u);
  EXPECT_GE(plan.firedCount(), 0u);
}

}  // namespace
