// FaultPlan: deterministic fault schedules — clause shapes, filters, the
// spec-string grammar, seeded replay, and integration as a Pfs fault hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/pfs/fault_plan.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

pfs::OpContext makeOp(std::uint64_t opIndex, pfs::OpKind kind,
                      pfs::OpOutcome* outcome,
                      const std::string& file = "f") {
  pfs::OpContext op;
  op.file = file;
  op.kind = kind;
  op.offset = 0;
  op.bytes = outcome != nullptr ? outcome->completeBytes : 64;
  op.nodeId = 0;
  op.opIndex = opIndex;
  op.outcome = outcome;
  return op;
}

TEST(FaultPlan, FailAtOpFiresExactlyOnce) {
  pfs::FaultPlan plan;
  plan.failAtOp(3);
  pfs::OpOutcome out{64, false};
  for (std::uint64_t i = 0; i < 8; ++i) {
    out = {64, false};
    if (i == 3) {
      EXPECT_THROW(plan.apply(makeOp(i, pfs::OpKind::Write, &out)), IoError);
    } else {
      plan.apply(makeOp(i, pfs::OpKind::Write, &out));
      EXPECT_EQ(out.completeBytes, 64u);
      EXPECT_FALSE(out.crash);
    }
  }
  EXPECT_EQ(plan.firedCount(), 1u);
}

TEST(FaultPlan, ShortCompletionLowersOutcome) {
  pfs::FaultPlan plan;
  plan.shortCompletionAtOp(5, 16);
  pfs::OpOutcome out{64, false};
  plan.apply(makeOp(5, pfs::OpKind::Write, &out));
  EXPECT_EQ(out.completeBytes, 16u);
  EXPECT_FALSE(out.crash);
  // A short clause never raises the grant above the request.
  pfs::FaultPlan big;
  big.shortCompletionAtOp(1, 1000);
  out = {64, false};
  big.apply(makeOp(1, pfs::OpKind::Write, &out));
  EXPECT_EQ(out.completeBytes, 64u);
}

TEST(FaultPlan, CrashAtOpSetsOutcomeOrThrows) {
  pfs::FaultPlan plan;
  plan.crashAtOp(2, 8);
  pfs::OpOutcome out{64, false};
  plan.apply(makeOp(2, pfs::OpKind::Write, &out));
  EXPECT_TRUE(out.crash);
  EXPECT_EQ(out.completeBytes, 8u);
  // Without an outcome slot (observe-style caller) the crash throws
  // directly.
  pfs::FaultPlan plan2;
  plan2.crashAtOp(2);
  EXPECT_THROW(plan2.apply(makeOp(2, pfs::OpKind::Write, nullptr)),
               pfs::CrashInjected);
}

TEST(FaultPlan, KindAndFileFiltersRestrictTheLastClause) {
  pfs::FaultPlan plan;
  plan.failAtOp(1).onlyKind(pfs::OpKind::Read).onlyFile("a");
  pfs::OpOutcome out{64, false};
  // Wrong kind, wrong file: no fire.
  plan.apply(makeOp(1, pfs::OpKind::Write, &out, "a"));
  plan.apply(makeOp(1, pfs::OpKind::Read, &out, "b"));
  EXPECT_EQ(plan.firedCount(), 0u);
  EXPECT_THROW(plan.apply(makeOp(1, pfs::OpKind::Read, &out, "a")), IoError);
  EXPECT_EQ(plan.firedCount(), 1u);
}

TEST(FaultPlan, ProbabilisticClauseReplaysWithTheSeed) {
  // Two plans with the same seed see the same op sequence and fire on the
  // same ops; no wall-clock is involved anywhere.
  std::vector<bool> a, b;
  for (int run = 0; run < 2; ++run) {
    pfs::FaultPlan plan(1234);
    plan.failWithProbability(0.3);
    std::vector<bool>& fired = run == 0 ? a : b;
    for (std::uint64_t i = 0; i < 200; ++i) {
      pfs::OpOutcome out{64, false};
      bool f = false;
      try {
        plan.apply(makeOp(i, pfs::OpKind::Write, &out));
      } catch (const IoError&) {
        f = true;
      }
      fired.push_back(f);
    }
  }
  EXPECT_EQ(a, b);
  const auto count = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(count, 20u);  // ~60 expected at p = 0.3
  EXPECT_LT(count, 120u);
}

TEST(FaultPlan, FirstMatchingClauseWins) {
  pfs::FaultPlan plan;
  plan.shortCompletionAtOp(4, 8).failAtOp(4);
  pfs::OpOutcome out{64, false};
  plan.apply(makeOp(4, pfs::OpKind::Write, &out));  // short, not fail
  EXPECT_EQ(out.completeBytes, 8u);
  EXPECT_EQ(plan.firedCount(), 1u);
}

TEST(FaultPlan, ParsesTheSpecGrammar) {
  pfs::FaultPlan plan = pfs::FaultPlan::parse("fail@3;crash@9:16");
  EXPECT_EQ(plan.clauseCount(), 2u);
  pfs::OpOutcome out{64, false};
  EXPECT_THROW(plan.apply(makeOp(3, pfs::OpKind::Write, &out)), IoError);
  out = {64, false};
  plan.apply(makeOp(9, pfs::OpKind::Write, &out));
  EXPECT_TRUE(out.crash);
  EXPECT_EQ(out.completeBytes, 16u);

  pfs::FaultPlan wr = pfs::FaultPlan::parse("write:fail@2;read:short@6:4");
  pfs::OpOutcome o2{64, false};
  wr.apply(makeOp(2, pfs::OpKind::Read, &o2));  // write-only clause
  EXPECT_EQ(wr.firedCount(), 0u);
  EXPECT_THROW(wr.apply(makeOp(2, pfs::OpKind::Write, &o2)), IoError);
  o2 = {64, false};
  wr.apply(makeOp(6, pfs::OpKind::Read, &o2));
  EXPECT_EQ(o2.completeBytes, 4u);

  pfs::FaultPlan prob = pfs::FaultPlan::parse("fail%0.5", 7);
  EXPECT_EQ(prob.clauseCount(), 1u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(pfs::FaultPlan::parse("bogus@1"), UsageError);
  EXPECT_THROW(pfs::FaultPlan::parse("fail@"), UsageError);
  EXPECT_THROW(pfs::FaultPlan::parse("fail@x"), UsageError);
  EXPECT_THROW(pfs::FaultPlan::parse("fail%1.5"), UsageError);
  EXPECT_THROW(pfs::FaultPlan::parse("short@3"), UsageError);
  EXPECT_THROW(pfs::FaultPlan::parse(""), UsageError);
}

TEST(FaultPlan, WorksAsAPfsFaultHook) {
  pfs::Pfs fs = test::memFs();
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    const ByteBuffer data(32, Byte{0xAB});
    f->writeAt(node, 0, data);

    pfs::FaultPlan plan;
    plan.failAtOp(fs.opCount()).onlyKind(pfs::OpKind::Write);
    fs.setFaultHook(plan.hook());
    EXPECT_THROW(f->writeAt(node, 0, data), IoError);
    fs.setFaultHook(nullptr);
    EXPECT_EQ(plan.firedCount(), 1u);

    // The failed op applied nothing; the file still reads back clean.
    ByteBuffer back(32);
    EXPECT_EQ(f->readAt(node, 0, back), 32u);
    EXPECT_EQ(back, data);
  });
}

}  // namespace
