// RetryPolicy: bounded retries with modeled backoff for transient storage
// faults — success after transients, prefix resumption after short writes,
// give-up semantics, crash fatality, and the no-fault golden guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/pfs/fault_plan.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

TEST(RetryPolicy, BackoffIsDeterministicAndBounded) {
  pfs::RetryPolicy rp;
  rp.backoffBase = 1e-3;
  rp.backoffFactor = 2.0;
  rp.backoffMax = 0.1;
  rp.jitter = 0.2;
  rp.seed = 99;
  for (int k = 1; k <= 12; ++k) {
    const double b1 = rp.backoffFor(k, 42, 1);
    const double b2 = rp.backoffFor(k, 42, 1);
    EXPECT_DOUBLE_EQ(b1, b2);  // pure function of (policy, k, op, node)
    EXPECT_GE(b1, rp.backoffBase * (1.0 - rp.jitter));
    EXPECT_LE(b1, rp.backoffMax * (1.0 + rp.jitter));
  }
  // Different ops jitter differently (the whole point of jitter).
  EXPECT_NE(rp.backoffFor(1, 42, 1), rp.backoffFor(1, 43, 1));
}

// Regression: the cap used to be applied BEFORE jitter, so once the
// exponential curve saturated, positive jitter pushed the returned delay up
// to backoffMax * (1 + jitter) — the documented hard bound was violated on
// every deep retry. The cap is a bound on the RETURNED value.
TEST(RetryPolicy, BackoffNeverExceedsMaxForAnySeedOrAttempt) {
  for (const std::uint64_t seed : {0ull, 1ull, 99ull, 0xDEADBEEFull}) {
    for (const double jitter : {0.0, 0.2, 0.5, 0.99}) {
      pfs::RetryPolicy rp;
      rp.backoffBase = 1e-3;
      rp.backoffFactor = 3.0;
      rp.backoffMax = 0.05;
      rp.jitter = jitter;
      rp.seed = seed;
      for (int attempt = 1; attempt <= 20; ++attempt) {
        for (std::uint64_t op = 0; op < 16; ++op) {
          for (int node = 0; node < 3; ++node) {
            const double b = rp.backoffFor(attempt, op, node);
            EXPECT_LE(b, rp.backoffMax)
                << "seed " << seed << " jitter " << jitter << " attempt "
                << attempt << " op " << op << " node " << node;
            EXPECT_GE(b, 0.0);
          }
        }
      }
    }
  }
}

TEST(RetryPolicy, TransientWriteFailuresRetriedToSuccess) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 5;
  rp.backoffBase = 0.25;
  rp.backoffFactor = 2.0;
  rp.backoffMax = 10.0;
  rp.jitter = 0.0;  // exact backoff arithmetic below
  fs.setRetryPolicy(rp);

  std::atomic<int> failuresLeft{2};
  std::mutex mu;
  std::vector<std::uint64_t> failedOps;
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.kind != pfs::OpKind::Write) return;
    int left = failuresLeft.load();
    while (left > 0 && !failuresLeft.compare_exchange_weak(left, left - 1)) {
    }
    if (left > 0) {
      std::lock_guard<std::mutex> lock(mu);
      failedOps.push_back(op.opIndex);
      throw IoError("injected transient");
    }
  });

  double clockAfter = 0.0;
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    const ByteBuffer data(64, Byte{0x5A});
    f->writeAt(node, 0, data);  // succeeds on the third attempt
    ByteBuffer back(64);
    EXPECT_EQ(f->readAt(node, 0, back), 64u);
    EXPECT_EQ(back, data);
    clockAfter = node.clock().now();
  });
  fs.setFaultHook(nullptr);

  // Two failed attempts => two backoffs, charged to the virtual clock:
  // retry 1 waits base, retry 2 waits base*factor (no jitter, no perf
  // model, so the clock holds exactly the backoff).
  ASSERT_EQ(failedOps.size(), 2u);
  EXPECT_DOUBLE_EQ(clockAfter, 0.25 + 0.5);
}

#if PCXX_OBS_ENABLED
TEST(RetryPolicy, RetriesAndBackoffShowUpInMetrics) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 4;
  rp.backoffBase = 0.125;
  rp.jitter = 0.0;
  fs.setRetryPolicy(rp);

  std::atomic<int> failuresLeft{1};
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Write && failuresLeft.fetch_sub(1) > 0) {
      throw IoError("injected transient");
    }
  });

  rt::Machine m(1);
  obs::MetricsRegistry reg(1);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(16, Byte{1}));
  });
  m.detachObserver();
  fs.setFaultHook(nullptr);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.merged.counter(obs::Counter::PfsRetries), 1u);
  EXPECT_EQ(snap.merged.counter(obs::Counter::PfsGiveUps), 0u);
  EXPECT_DOUBLE_EQ(snap.merged.timer(obs::Timer::PfsBackoffSeconds), 0.125);
}
#endif  // PCXX_OBS_ENABLED

TEST(RetryPolicy, ShortWriteResumesFromCompletedPrefix) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 3;
  rp.backoffBase = 1e-6;
  fs.setRetryPolicy(rp);

  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    ByteBuffer data(64);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Byte>(i);

    pfs::FaultPlan plan;
    plan.shortCompletionAtOp(fs.opCount(), 24);
    pfs::OpRecorder rec;
    fs.setFaultHook([&](const pfs::OpContext& op) {
      rec.record(op);
      plan.apply(op);
    });
    f->writeAt(node, 0, data);
    fs.setFaultHook(nullptr);

    // Attempt 1 asked for all 64 at offset 0; the retry asked only for the
    // remaining 40 at offset 24 — the durable prefix is not re-sent.
    const auto ops = rec.ops();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].offset, 0u);
    EXPECT_EQ(ops[0].bytes, 64u);
    EXPECT_EQ(ops[1].offset, 24u);
    EXPECT_EQ(ops[1].bytes, 40u);

    ByteBuffer back(64);
    EXPECT_EQ(f->readAt(node, 0, back), 64u);
    EXPECT_EQ(back, data);
  });
}

TEST(RetryPolicy, ExhaustedAttemptsRethrowTheOriginalError) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 3;
  rp.backoffBase = 1e-6;
  fs.setRetryPolicy(rp);

  std::atomic<int> fires{0};
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Write) {
      fires.fetch_add(1);
      throw IoError("device on fire");
    }
  });
  EXPECT_THROW(
      test::runSpmd(1,
                    [&](rt::Node& node) {
                      auto f =
                          fs.open(node, "t.bin", pfs::OpenMode::Create);
                      try {
                        f->writeAt(node, 0, ByteBuffer(8, Byte{1}));
                      } catch (const IoError& e) {
                        // The give-up rethrows the hook's error verbatim
                        // (no re-wrapping, no doubled prefix).
                        EXPECT_STREQ(e.what(), "io error: device on fire");
                        throw;
                      }
                    }),
      IoError);
  fs.setFaultHook(nullptr);
  EXPECT_EQ(fires.load(), 3);  // maxAttempts, no more
}

TEST(RetryPolicy, DeadlineBoundsTheAttempts) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 100;
  rp.backoffBase = 1.0;
  rp.backoffFactor = 1.0;
  rp.backoffMax = 1.0;
  rp.jitter = 0.0;
  rp.opDeadlineSeconds = 1.5;  // room for two 1 s backoffs, not three
  fs.setRetryPolicy(rp);

  std::atomic<int> fires{0};
  fs.setFaultHook([&](const pfs::OpContext& op) {
    if (op.kind == pfs::OpKind::Write) {
      fires.fetch_add(1);
      throw IoError("still broken");
    }
  });
  EXPECT_THROW(test::runSpmd(1,
                             [&](rt::Node& node) {
                               auto f = fs.open(node, "t.bin",
                                                pfs::OpenMode::Create);
                               f->writeAt(node, 0, ByteBuffer(8, Byte{1}));
                             }),
               IoError);
  fs.setFaultHook(nullptr);
  // Attempts at t = 0 and t = 1 back off; the attempt at t = 2 finds the
  // deadline spent and gives up instead of backing off again.
  EXPECT_EQ(fires.load(), 3);
}

TEST(RetryPolicy, CrashIsFatalAndNeverRetried) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 50;
  fs.setRetryPolicy(rp);

  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(64, Byte{0xEE}));

    pfs::FaultPlan plan;
    plan.crashAtOp(fs.opCount(), 16);
    fs.setFaultHook(plan.hook());
    bool crashed = false;
    try {
      f->writeAt(node, 0, ByteBuffer(64, Byte{0x11}));
    } catch (const pfs::CrashInjected&) {
      crashed = true;
    }
    fs.setFaultHook(nullptr);
    EXPECT_TRUE(crashed);
    EXPECT_EQ(plan.firedCount(), 1u);  // one attempt, despite maxAttempts=50

    // Exactly the durable prefix was applied before the crash.
    ByteBuffer back(64);
    EXPECT_EQ(f->readAt(node, 0, back), 64u);
    for (size_t i = 0; i < back.size(); ++i) {
      EXPECT_EQ(back[i], i < 16 ? Byte{0x11} : Byte{0xEE}) << i;
    }
  });
}

TEST(RetryPolicy, EndOfFileShortReadIsNotAFault) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 5;
  fs.setRetryPolicy(rp);
  test::runSpmd(1, [&](rt::Node& node) {
    auto f = fs.open(node, "t.bin", pfs::OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(10, Byte{7}));
    const std::uint64_t opsBefore = fs.opCount();
    ByteBuffer out(64);
    EXPECT_EQ(f->readAt(node, 0, out), 10u);  // EOF, not an error
    EXPECT_EQ(fs.opCount() - opsBefore, 1u);  // and not retried
    EXPECT_DOUBLE_EQ(node.clock().now(), 0.0);  // no backoff charged
  });
}

// The golden guarantee: with no faults injected, installing a retry policy
// changes nothing — the stream writes byte-identical files.
TEST(RetryPolicy, NoFaultsMeansByteIdenticalStreamFiles) {
  auto writeFile = [](pfs::Pfs& fs) {
    test::runSpmd(2, [&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(10, &P, coll::DistKind::Block);
      coll::Collection<double> g(&d);
      g.forEachLocal([](double& v, std::int64_t i) {
        v = static_cast<double>(i) * 1.5;
      });
      ds::OStream s(fs, &d, "golden.ds");
      s << g;
      s.write();
    });
  };
  auto fileBytes = [](pfs::Pfs& fs) {
    ByteBuffer bytes;
    test::runSpmd(1, [&](rt::Node& node) {
      auto f = fs.open(node, "golden.ds", pfs::OpenMode::Read);
      bytes.resize(static_cast<size_t>(f->size()));
      EXPECT_EQ(f->readAt(node, 0, bytes), bytes.size());
    });
    return bytes;
  };

  pfs::Pfs plain = test::memFs();
  writeFile(plain);

  pfs::Pfs retried = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 7;
  rp.backoffBase = 0.5;
  retried.setRetryPolicy(rp);
  writeFile(retried);

  EXPECT_EQ(fileBytes(plain), fileBytes(retried));
}

TEST(RetryPolicy, RejectsZeroAttempts) {
  pfs::Pfs fs = test::memFs();
  pfs::RetryPolicy rp;
  rp.maxAttempts = 0;
  EXPECT_THROW(fs.setRetryPolicy(rp), UsageError);
}

}  // namespace
