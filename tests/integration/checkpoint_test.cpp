// Integration tests across all layers: checkpoint/restart workflows over
// real files, node-count changes between writer and reader, and the SCF
// application loop with periodic state saves.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/dstream/dstream.h"
#include "src/scf/physics.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  pfs::PfsConfig posixConfig() {
    pfs::PfsConfig cfg;
    cfg.backend = pfs::PfsConfig::Backend::Posix;
    cfg.dir = dir_.string();
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, PosixCheckpointSurvivesProcessRestartSimulation) {
  const std::int64_t segments = 10;
  const int particles = 7;
  // "Process 1": write a checkpoint to real disk and drop all state.
  {
    pfs::Pfs fs(posixConfig());
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Cyclic);
      coll::Collection<scf::Segment> data(&d);
      scf::fillDeterministic(data, particles);
      ds::StreamOptions so;
      so.syncOnWrite = true;
      ds::OStream s(fs, &d, "ckpt.bin", so);
      s << data;
      s.write();
    });
  }  // fs destroyed: only the on-disk bytes remain

  // "Process 2": fresh Pfs over the same directory, different node count
  // AND distribution.
  {
    pfs::Pfs fs(posixConfig());
    rt::Machine m(3);
    std::atomic<std::int64_t> bad{0};
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> data(&d);
      ds::IStream s(fs, &d, "ckpt.bin");
      s.read();
      s >> data;
      bad.fetch_add(scf::verifyDeterministic(data, particles));
    });
    EXPECT_EQ(bad.load(), 0);
  }
}

TEST_F(CheckpointTest, SimulationContinuesBitExactAfterRestart) {
  // Reference: run 6 steps straight through on 4 nodes.
  const std::int64_t segments = 4;
  const int particles = 10;
  scf::StepperConfig stepperCfg;

  auto snapshotParticle = [](rt::Node& node,
                             coll::Collection<scf::Segment>& c) {
    double v = 0.0;
    if (c.owns(1)) v = c.at(1).x[2];
    return node.allreduceSum(v);
  };

  double straightThrough = 0.0;
  {
    rt::Machine m(4);
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> bodies(&d);
      scf::fillPlummer(bodies, particles, 99);
      scf::NBodyStepper stepper(stepperCfg);
      for (int i = 0; i < 6; ++i) stepper.step(node, bodies);
      const double v = snapshotParticle(node, bodies);
      if (node.id() == 0) straightThrough = v;
    });
  }

  // Checkpointed run: 3 steps on 4 nodes, checkpoint, resume 3 steps on 2.
  pfs::Pfs fs = test::memFs();
  {
    rt::Machine m(4);
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Block);
      coll::Collection<scf::Segment> bodies(&d);
      scf::fillPlummer(bodies, particles, 99);
      scf::NBodyStepper stepper(stepperCfg);
      for (int i = 0; i < 3; ++i) stepper.step(node, bodies);
      ds::OStream s(fs, &d, "mid");
      s << bodies;
      s.write();
    });
  }
  double resumed = 0.0;
  {
    rt::Machine m(2);
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(segments, &P, coll::DistKind::Cyclic);
      coll::Collection<scf::Segment> bodies(&d);
      ds::IStream s(fs, &d, "mid");
      s.read();
      s >> bodies;
      scf::NBodyStepper stepper(stepperCfg);
      for (int i = 0; i < 3; ++i) stepper.step(node, bodies);
      const double v = snapshotParticle(node, bodies);
      if (node.id() == 0) resumed = v;
    });
  }
  // Same particle set, same deterministic force sum: bit-exact continuation.
  EXPECT_DOUBLE_EQ(resumed, straightThrough);
}

TEST_F(CheckpointTest, PeriodicCheckpointsKeepOnlyLatestRecordReadable) {
  // Overwriting checkpoints (Create mode) leaves exactly one record; a
  // rolling checkpoint never grows the file.
  pfs::Pfs fs = test::memFs();
  rt::Machine m(2);
  std::uint64_t size1 = 0, size3 = 0;
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(6, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    for (int epoch = 0; epoch < 3; ++epoch) {
      g.forEachLocal([epoch](int& v, std::int64_t i) {
        v = static_cast<int>(epoch * 100 + i);
      });
      ds::OStream s(fs, &d, "rolling");
      s << g;
      s.write();
      node.barrier();
      if (node.id() == 0) {
        auto f = fs.open(node, "rolling", pfs::OpenMode::Read);
        if (epoch == 0) size1 = f->size();
        if (epoch == 2) size3 = f->size();
      } else {
        fs.open(node, "rolling", pfs::OpenMode::Read);
      }
    }
    // The latest epoch's values are what reads back.
    coll::Collection<int> h(&d);
    ds::IStream in(fs, &d, "rolling");
    in.read();
    in >> h;
    h.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(200 + i));
    });
  });
  EXPECT_EQ(size1, size3);
}

TEST_F(CheckpointTest, DefaultPfsRegistryWorksAcrossPrograms) {
  pfs::Pfs fs = test::memFs();
  ds::setDefaultPfs(&fs);
  rt::Machine m(2);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    g.forEachLocal([](int& v, std::int64_t i) { v = static_cast<int>(i); });
    // Paper-style constructors: no fs argument.
    ds::oStream s(&d, "viaDefault");
    s << g;
    s.write();
  });
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<int> g(&d);
    ds::iStream s(&d, "viaDefault");
    s.read();
    s >> g;
    g.forEachLocal([](int& v, std::int64_t i) {
      EXPECT_EQ(v, static_cast<int>(i));
    });
  });
  ds::setDefaultPfs(nullptr);
  EXPECT_THROW(ds::defaultPfs(), UsageError);
}

}  // namespace
