#!/usr/bin/env python3
"""Unit tests for bench/compare_metrics.py --fail-on-regression.

Exit-code contract under test (gate mode):
    0  no regression (including improvements beyond the threshold)
    3  some total or phase grew by more than PCT percent
    2  usage errors (bad flag value, no comparable keys)
and the pre-existing diff mode (no flag): 1 when flagged, 0 when clean.

Standard library only; runs the script as a subprocess exactly like the
CI perf gate does.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "bench", "compare_metrics.py")


def make_doc(total=10.0, pfs_read=4.0, other=6.0):
    return {
        "schema": "pcxx-metrics-v1",
        "tables": [{
            "title": "T",
            "platform": "sim",
            "nprocs": 4,
            "sorted_read": True,
            "cells": [{
                "segments": 256,
                "bytes": 1,
                "methods": [{
                    "method": "pC++/streams",
                    "total_seconds": total,
                    "phases": {
                        "insert_buffer_fill": 0.0,
                        "header": 0.0,
                        "redistribution": 0.0,
                        "pfs_read": pfs_read,
                        "pfs_write": 0.0,
                        "other": other,
                    },
                    "counters": {},
                }],
            }],
        }],
    }


class CompareMetricsGateTest(unittest.TestCase):
    def run_compare(self, base, cand, *extra):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "base.json")
            cp = os.path.join(d, "cand.json")
            with open(bp, "w", encoding="utf-8") as f:
                json.dump(base, f)
            with open(cp, "w", encoding="utf-8") as f:
                json.dump(cand, f)
            proc = subprocess.run(
                [sys.executable, SCRIPT, bp, cp, *extra],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        return proc

    def test_identical_passes_gate(self):
        doc = make_doc()
        proc = self.run_compare(doc, doc, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_total_regression_fails_gate(self):
        base = make_doc()
        cand = make_doc(total=12.0)  # +20%
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 3, proc.stdout + proc.stderr)
        self.assertIn("regression(s) beyond", proc.stdout)

    def test_phase_regression_fails_gate(self):
        base = make_doc()
        cand = make_doc(pfs_read=4.8)  # +20% in one phase, total unchanged
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 3, proc.stdout + proc.stderr)
        self.assertIn("pfs_read", proc.stdout)

    def test_regression_within_threshold_passes(self):
        base = make_doc()
        cand = make_doc(total=10.5)  # +5% < 10%
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_improvement_never_fails_gate(self):
        base = make_doc()
        cand = make_doc(total=5.0, pfs_read=2.0, other=3.0)  # -50%
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_new_tiny_phase_is_not_a_regression(self):
        base = make_doc(pfs_read=0.0)
        cand = make_doc(pfs_read=1e-8)  # below the 1 microsecond floor
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_no_common_keys_is_usage_error(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        cand["tables"][0]["title"] = "different"
        proc = self.run_compare(base, cand, "--fail-on-regression", "10")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_negative_pct_is_usage_error(self):
        doc = make_doc()
        proc = self.run_compare(doc, doc, "--fail-on-regression", "-1")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_diff_mode_still_exits_one_when_flagged(self):
        base = make_doc()
        cand = make_doc(total=12.0)
        proc = self.run_compare(base, cand)  # no gate flag: old behavior
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_diff_mode_clean_exits_zero(self):
        doc = make_doc()
        proc = self.run_compare(doc, doc)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
