// Unit tests for pcxx::obs: histograms, per-node metrics, registry
// snapshots/merges, the generic JSON dump, and the runtime integration
// (counters actually tick when an observer is attached to a Machine).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/runtime/machine.h"
#include "src/util/error.h"
#include "tests/common/json_check.h"

namespace {

using namespace pcxx;
using obs::Counter;
using obs::Hist;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::Timer;

TEST(Histogram, BucketsByLog2) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(1024);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(3), 1u);  // [4, 8)
  EXPECT_EQ(h.bucket(11), 1u);  // [1024, 2048)
  EXPECT_EQ(h.total(), 6u);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, BucketLowIsInclusiveLowerBound) {
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(1), 1u);
  EXPECT_EQ(Histogram::bucketLow(2), 2u);
  EXPECT_EQ(Histogram::bucketLow(3), 4u);
  EXPECT_EQ(Histogram::bucketLow(11), 1024u);
}

TEST(MetricsRegistry, SnapshotCopiesAndMerges) {
  MetricsRegistry reg(2);
  reg.node(0).add(Counter::DsInserts, 3);
  reg.node(1).add(Counter::DsInserts, 4);
  reg.node(0).addSeconds(Timer::DsWriteSeconds, 1.5);
  reg.node(1).addSeconds(Timer::DsWriteSeconds, 2.5);
  reg.node(0).record(Hist::PfsWriteSize, 100);
  reg.node(1).record(Hist::PfsWriteSize, 100);
  reg.node(0).addPeerBytes(1, 64);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.perNode.size(), 2u);
  EXPECT_EQ(snap.perNode[0].counter(Counter::DsInserts), 3u);
  EXPECT_EQ(snap.perNode[1].counter(Counter::DsInserts), 4u);
  EXPECT_EQ(snap.merged.counter(Counter::DsInserts), 7u);
  EXPECT_DOUBLE_EQ(snap.merged.timer(Timer::DsWriteSeconds), 4.0);
  // 100 lands in bucket [64, 128) = bucket 7.
  EXPECT_EQ(snap.merged.hists[static_cast<size_t>(Hist::PfsWriteSize)][7],
            2u);
  ASSERT_EQ(snap.perNode[0].peerBytes.size(), 2u);
  EXPECT_EQ(snap.perNode[0].peerBytes[1], 64u);
  EXPECT_EQ(snap.merged.peerBytes[1], 64u);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry reg(1);
  reg.node(0).add(Counter::PfsReadOps, 9);
  reg.node(0).addSeconds(Timer::PfsReadSeconds, 2.0);
  reg.node(0).record(Hist::PfsReadSize, 8);
  reg.node(0).addPeerBytes(0, 1);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.merged.counter(Counter::PfsReadOps), 0u);
  EXPECT_DOUBLE_EQ(snap.merged.timer(Timer::PfsReadSeconds), 0.0);
  EXPECT_EQ(snap.merged.hists[static_cast<size_t>(Hist::PfsReadSize)][4],
            0u);
  EXPECT_EQ(snap.merged.peerBytes[0], 0u);
}

TEST(MetricsJson, SnapshotJsonIsValidAndNamesNonzeroMetrics) {
  MetricsRegistry reg(2);
  reg.node(0).add(Counter::DsWrites, 1);
  reg.node(1).addSeconds(Timer::DsWriteSeconds, 0.25);
  const std::string json = obs::snapshotJson(reg.snapshot());
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("ds.writes"), std::string::npos) << json;
  EXPECT_NE(json.find("ds.write_seconds"), std::string::npos) << json;
  // Zero metrics stay out of the dump.
  EXPECT_EQ(json.find("pfs.read_ops"), std::string::npos) << json;
}

TEST(MetricNames, AreUniqueAndNonNull) {
  std::vector<std::string> names;
  for (int i = 0; i < obs::kNumCounters; ++i) {
    names.emplace_back(obs::counterName(static_cast<Counter>(i)));
  }
  for (int i = 0; i < obs::kNumTimers; ++i) {
    names.emplace_back(obs::timerName(static_cast<Timer>(i)));
  }
  for (int i = 0; i < obs::kNumHists; ++i) {
    names.emplace_back(obs::histName(static_cast<Hist>(i)));
  }
  for (const auto& n : names) EXPECT_FALSE(n.empty());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(ObsMacros, TolerateNullObserver) {
  [[maybe_unused]] obs::NodeObs* obs = nullptr;
  PCXX_OBS_COUNT(obs, DsInserts, 1);
  PCXX_OBS_SECONDS(obs, DsWriteSeconds, 1.0);
  PCXX_OBS_HIST(obs, PfsReadSize, 8);
  PCXX_OBS_PEER_BYTES(obs, 0, 8);
  PCXX_OBS_TRACE_COUNTER(obs, "x", 1);
  { PCXX_OBS_PHASE(obs, "x", DsWriteSeconds); }
  { PCXX_OBS_SPAN(obs, "x"); }
  SUCCEED();
}

#if PCXX_OBS_ENABLED
TEST(MachineObserver, CountsCollectivesAndMessages) {
  rt::Machine m(2);
  MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  m.run([](rt::Node& node) {
    node.barrier();
    node.barrier();
    if (node.id() == 0) {
      node.send(1, 0, ByteBuffer(16));
    } else {
      (void)node.recv(0, 0);
    }
  });
  m.detachObserver();
  const auto snap = reg.snapshot();
  // Two explicit barriers per node (plus whatever recv/send sync adds).
  EXPECT_GE(snap.perNode[0].counter(Counter::RtCollectives), 2u);
  EXPECT_EQ(snap.perNode[0].counter(Counter::RtMessagesSent), 1u);
  EXPECT_EQ(snap.perNode[0].counter(Counter::RtMessageBytes), 16u);
  EXPECT_EQ(snap.perNode[1].counter(Counter::RtMessagesSent), 0u);

  // Detached: further runs leave the registry untouched.
  m.run([](rt::Node& node) { node.barrier(); });
  EXPECT_EQ(reg.snapshot().perNode[0].counter(Counter::RtMessagesSent), 1u);
}

TEST(MachineObserver, AttachRequiresEnoughRegistrySlots) {
  rt::Machine m(4);
  MetricsRegistry small(2);
  obs::Observer observer;
  observer.metrics = &small;
  EXPECT_THROW(m.attachObserver(observer), UsageError);
}
#endif  // PCXX_OBS_ENABLED

}  // namespace
