// Golden-schema test for the Chrome trace_event output, plus the
// "observability is free" guarantee: a write+read round-trip produces a
// trace that loads cleanly (valid JSON, matched B/E pairs, monotone
// timestamps per track), and attaching an observer must not change a
// single byte of the stream file it observes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/runtime/machine.h"
#include "tests/common/json_check.h"

namespace {

using namespace pcxx;

#if PCXX_OBS_ENABLED

/// One parsed trace event (the fields the schema checks need).
struct Ev {
  std::string name;
  char phase = '?';
  double ts = 0.0;
  int tid = -1;
};

/// Extract the events from TraceSession JSON (one event object per line).
std::vector<Ev> parseEvents(const std::string& json) {
  std::vector<Ev> events;
  std::istringstream in(json);
  std::string line;
  auto field = [](const std::string& s, const std::string& key) {
    const auto at = s.find("\"" + key + "\": ");
    return at == std::string::npos ? std::string()
                                   : s.substr(at + key.size() + 4);
  };
  while (std::getline(in, line)) {
    const std::string ph = field(line, "ph");
    if (ph.empty() || ph[1] == 'M') continue;  // metadata / non-events
    Ev e;
    e.phase = ph[1];
    const std::string name = field(line, "name");
    e.name = name.substr(1, name.find('"', 1) - 1);
    e.ts = std::stod(field(line, "ts"));
    e.tid = std::stoi(field(line, "tid"));
    events.push_back(e);
  }
  return events;
}

#endif  // PCXX_OBS_ENABLED

/// Write + read a small collection with `observer` attached (if any);
/// returns the stream file's bytes.
std::string roundtrip(const std::filesystem::path& dir,
                      obs::Observer* observer) {
  std::filesystem::create_directories(dir);
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir.string();
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  rt::Machine m(3);
  if (observer != nullptr) m.attachObserver(*observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = 0.25 * static_cast<double>(i);
    });
    {
      ds::OStream s(fs, &d, "trace.ds");
      s << g;
      s.write();
    }
    coll::Distribution dr(12, &P, coll::DistKind::Block);
    coll::Collection<double> back(&dr);
    ds::IStream in(fs, &dr, "trace.ds");
    in.read();
    in >> back;
  });
  std::ifstream raw(dir / "trace.ds", std::ios::binary);
  std::ostringstream bytes;
  bytes << raw.rdbuf();
  return bytes.str();
}

class TraceGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

#if PCXX_OBS_ENABLED

TEST_F(TraceGolden, RoundtripTraceLoadsCleanly) {
  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  roundtrip(dir_ / "a", &observer);

  ASSERT_GT(trace.eventCount(), 0u);
  const std::string json = trace.toJson();
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);

  const std::vector<Ev> events = parseEvents(json);
  ASSERT_FALSE(events.empty());

  // Schema: every track is a well-nested B/E sequence with monotone
  // timestamps, and tids stay within the machine's node range.
  std::map<int, std::vector<std::string>> stack;
  std::map<int, double> lastTs;
  for (const Ev& e : events) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 3);
    if (lastTs.count(e.tid) != 0) {
      EXPECT_GE(e.ts, lastTs[e.tid])
          << e.name << " went backwards on tid " << e.tid;
    }
    lastTs[e.tid] = e.ts;
    if (e.phase == 'B') {
      stack[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack[e.tid].empty()) << "E without B: " << e.name;
      EXPECT_EQ(stack[e.tid].back(), e.name) << "mismatched span nesting";
      stack[e.tid].pop_back();
    }
  }
  for (const auto& [tid, open] : stack) {
    EXPECT_TRUE(open.empty()) << open.size() << " unclosed span(s) on tid "
                              << tid;
  }

  // The round-trip must show the headline phases on some track.
  EXPECT_NE(json.find("\"ds.write\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.bufferFill\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.read\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.redist\""), std::string::npos);
  EXPECT_NE(json.find("\"pfs.writeAt\""), std::string::npos);

  // And the metrics side of the same run must agree on the op counts.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.merged.counter(obs::Counter::DsWrites), 3u);
  EXPECT_EQ(snap.merged.counter(obs::Counter::DsReads), 3u);
  EXPECT_GT(snap.merged.counter(obs::Counter::PfsWriteBytes), 0u);
  EXPECT_GT(snap.merged.counter(obs::Counter::RedistElementsMoved), 0u);
}

TEST_F(TraceGolden, WriteJsonProducesLoadableFile) {
  obs::TraceSession trace(2);
  trace.begin(0, "x", 0.0);
  trace.end(0, "x", 1e-3);
  trace.counter(1, "bytes", 42.0, 5e-4);
  trace.instant(1, "mark", 6e-4);
  const std::string path = (dir_ / "t.json").string();
  trace.writeJson(path);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(test::JsonChecker::valid(ss.str())) << ss.str();
  EXPECT_NE(ss.str().find("\"value\": 42.000"), std::string::npos);
}

#endif  // PCXX_OBS_ENABLED

TEST_F(TraceGolden, ObserverDoesNotChangeStreamFileBytes) {
  std::filesystem::create_directories(dir_ / "obs");
  std::filesystem::create_directories(dir_ / "plain");
  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  const std::string observed = roundtrip(dir_ / "obs", &observer);
  const std::string plain = roundtrip(dir_ / "plain", nullptr);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(observed, plain)
      << "attaching an observer altered the stream file";
}

}  // namespace
