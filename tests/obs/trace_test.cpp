// Golden-schema test for the Chrome trace_event output, plus the
// "observability is free" guarantee: a write+read round-trip produces a
// trace that loads cleanly (valid JSON, matched B/E pairs, monotone
// timestamps per track), and attaching an observer must not change a
// single byte of the stream file it observes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/runtime/machine.h"
#include "tests/common/json_check.h"

namespace {

using namespace pcxx;

#if PCXX_OBS_ENABLED

/// One parsed trace event (the fields the schema checks need).
struct Ev {
  std::string name;
  char phase = '?';
  double ts = 0.0;
  int tid = -1;
  std::string id;    ///< flow correlation id (hex string; empty when absent)
  bool bp = false;   ///< terminator bound to enclosing slice ("bp": "e")
};

/// Extract the events from TraceSession JSON (one event object per line).
std::vector<Ev> parseEvents(const std::string& json) {
  std::vector<Ev> events;
  std::istringstream in(json);
  std::string line;
  auto field = [](const std::string& s, const std::string& key) {
    const auto at = s.find("\"" + key + "\": ");
    return at == std::string::npos ? std::string()
                                   : s.substr(at + key.size() + 4);
  };
  while (std::getline(in, line)) {
    const std::string ph = field(line, "ph");
    if (ph.empty() || ph[1] == 'M') continue;  // metadata / non-events
    Ev e;
    e.phase = ph[1];
    const std::string name = field(line, "name");
    e.name = name.substr(1, name.find('"', 1) - 1);
    e.ts = std::stod(field(line, "ts"));
    e.tid = std::stoi(field(line, "tid"));
    const std::string id = field(line, "id");
    if (!id.empty() && id[0] == '"') {
      e.id = id.substr(1, id.find('"', 1) - 1);
    }
    e.bp = line.find("\"bp\": \"e\"") != std::string::npos;
    events.push_back(e);
  }
  return events;
}

#endif  // PCXX_OBS_ENABLED

/// Write + read a small collection with `observer` attached (if any);
/// returns the stream file's bytes.
std::string roundtrip(const std::filesystem::path& dir,
                      obs::Observer* observer,
                      ds::StreamOptions opts = {}) {
  std::filesystem::create_directories(dir);
  pfs::PfsConfig cfg;
  cfg.backend = pfs::PfsConfig::Backend::Posix;
  cfg.dir = dir.string();
  cfg.perf = pfs::paragonParams();
  pfs::Pfs fs(cfg);
  rt::Machine m(3);
  if (observer != nullptr) m.attachObserver(*observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t i) {
      v = 0.25 * static_cast<double>(i);
    });
    {
      ds::OStream s(fs, &d, "trace.ds", opts);
      s << g;
      s.write();
    }
    coll::Distribution dr(12, &P, coll::DistKind::Block);
    coll::Collection<double> back(&dr);
    ds::IStream in(fs, &dr, "trace.ds", opts);
    in.read();
    in >> back;
  });
  std::ifstream raw(dir / "trace.ds", std::ios::binary);
  std::ostringstream bytes;
  bytes << raw.rdbuf();
  return bytes.str();
}

class TraceGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

#if PCXX_OBS_ENABLED

TEST_F(TraceGolden, RoundtripTraceLoadsCleanly) {
  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  roundtrip(dir_ / "a", &observer);

  ASSERT_GT(trace.eventCount(), 0u);
  const std::string json = trace.toJson();
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);

  const std::vector<Ev> events = parseEvents(json);
  ASSERT_FALSE(events.empty());

  // Schema: every track is a well-nested B/E sequence with monotone
  // timestamps, and tids stay within the machine's node range.
  std::map<int, std::vector<std::string>> stack;
  std::map<int, double> lastTs;
  for (const Ev& e : events) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 3);
    if (lastTs.count(e.tid) != 0) {
      EXPECT_GE(e.ts, lastTs[e.tid])
          << e.name << " went backwards on tid " << e.tid;
    }
    lastTs[e.tid] = e.ts;
    if (e.phase == 'B') {
      stack[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack[e.tid].empty()) << "E without B: " << e.name;
      EXPECT_EQ(stack[e.tid].back(), e.name) << "mismatched span nesting";
      stack[e.tid].pop_back();
    }
  }
  for (const auto& [tid, open] : stack) {
    EXPECT_TRUE(open.empty()) << open.size() << " unclosed span(s) on tid "
                              << tid;
  }

  // The round-trip must show the headline phases on some track.
  EXPECT_NE(json.find("\"ds.write\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.bufferFill\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.read\""), std::string::npos);
  EXPECT_NE(json.find("\"ds.redist\""), std::string::npos);
  EXPECT_NE(json.find("\"pfs.writeAt\""), std::string::npos);

  // And the metrics side of the same run must agree on the op counts.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.merged.counter(obs::Counter::DsWrites), 3u);
  EXPECT_EQ(snap.merged.counter(obs::Counter::DsReads), 3u);
  EXPECT_GT(snap.merged.counter(obs::Counter::PfsWriteBytes), 0u);
  EXPECT_GT(snap.merged.counter(obs::Counter::RedistElementsMoved), 0u);
}

TEST_F(TraceGolden, FlowEventsFormTerminatedCausalChains) {
  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  roundtrip(dir_ / "flow", &observer);

  const std::string json = trace.toJson();
  const std::vector<Ev> events = parseEvents(json);
  ASSERT_FALSE(events.empty());

  std::map<std::string, int> starts;
  std::map<std::string, int> ends;
  int recordChains = 0;
  int collEdges = 0;
  int collEdgeEnds = 0;
  int stragglerMarks = 0;
  for (const Ev& e : events) {
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      EXPECT_FALSE(e.id.empty()) << "flow event without id: " << e.name;
      EXPECT_EQ(e.id.compare(0, 2, "0x"), 0) << "non-hex flow id " << e.id;
    }
    if (e.phase == 's') {
      ++starts[e.id];
      if (e.name == "ds.record") ++recordChains;
      if (e.name == "rt.coll") ++collEdges;
    } else if (e.phase == 'f') {
      ++ends[e.id];
      EXPECT_TRUE(e.bp) << "terminator without bp binding: " << e.name;
      if (e.name == "rt.coll") ++collEdgeEnds;
    } else if (e.phase == 'i' && e.name == "rt.coll_last_arrival") {
      ++stragglerMarks;
    }
  }

  // One chain per record per node: 3 writers + 3 sorted readers.
  EXPECT_EQ(recordChains, 6);
  // Collectives emit one causal edge per receiver, terminated on the
  // receiver's own track, plus a straggler instant on the blamed node.
  EXPECT_GT(collEdges, 0);
  EXPECT_EQ(collEdges, collEdgeEnds);
  EXPECT_GT(stragglerMarks, 0);
  // Ids are issued once, and every chain reaches a terminator.
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "flow id " << id << " started " << n << " times";
    EXPECT_TRUE(ends.count(id) != 0) << "unterminated flow chain " << id;
  }

  // Metrics agree: each costed collective blames exactly one straggler,
  // and the skew histogram saw every one of them.
  const auto snap = reg.snapshot();
  std::uint64_t stragglerOps = 0;
  for (const auto& node : snap.perNode) {
    stragglerOps += node.counter(obs::Counter::RtCollStragglerOps);
  }
  EXPECT_GT(stragglerOps, 0u);
  EXPECT_LE(stragglerOps, snap.perNode[0].counter(obs::Counter::RtCollectives));
  std::uint64_t skewSamples = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    skewSamples += snap.merged
        .hists[static_cast<size_t>(obs::Hist::RtCollSkew)][static_cast<size_t>(b)];
  }
  EXPECT_EQ(skewSamples, 3 * stragglerOps)
      << "every costed collective must record a skew sample on each node";
}

TEST_F(TraceGolden, WallTimeAsyncTraceIsCleanAndLeavesBytesIdentical) {
  ds::StreamOptions async;
  async.aioQueueDepth = 2;
  async.aioPrefetchDepth = 2;

  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  observer.timeMode = obs::Observer::TimeMode::Wall;
  const std::string observed = roundtrip(dir_ / "wall", &observer, async);
  const std::string plain = roundtrip(dir_ / "wallplain", nullptr, async);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(observed, plain)
      << "wall-time tracing with aio enabled altered the stream file";

  const std::string json = trace.toJson();
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  const std::vector<Ev> events = parseEvents(json);
  ASSERT_FALSE(events.empty());

  // Wall timestamps must be monotone per track with matched B/E nesting;
  // the modeled aio flusher/prefetch spans (virtual-timeline artifacts)
  // must not appear in a wall-time trace.
  std::map<int, std::vector<std::string>> stack;
  std::map<int, double> lastTs;
  for (const Ev& e : events) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 3) << "wall-time trace wrote to a modeled aux track";
    if (lastTs.count(e.tid) != 0) {
      EXPECT_GE(e.ts, lastTs[e.tid])
          << e.name << " went backwards on tid " << e.tid;
    }
    lastTs[e.tid] = e.ts;
    if (e.phase == 'B') {
      stack[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      ASSERT_FALSE(stack[e.tid].empty()) << "E without B: " << e.name;
      EXPECT_EQ(stack[e.tid].back(), e.name) << "mismatched span nesting";
      stack[e.tid].pop_back();
    }
  }
  for (const auto& [tid, open] : stack) {
    EXPECT_TRUE(open.empty())
        << open.size() << " unclosed span(s) on tid " << tid;
  }
  EXPECT_EQ(json.find("\"aio.flush\""), std::string::npos);
  EXPECT_EQ(json.find("\"aio.prefetch\""), std::string::npos);
}

TEST_F(TraceGolden, WriteJsonIsAtomicAndLeavesNoTempFile) {
  obs::TraceSession trace(1);
  trace.begin(0, "x", 0.0);
  trace.end(0, "x", 1e-3);
  const std::filesystem::path path = dir_ / "atomic.json";
  // Pre-existing content must be replaced wholesale, never appended to or
  // left truncated.
  {
    std::ofstream out(path);
    out << "{\"stale\": true}";
  }
  trace.writeJson(path.string());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "atomic.json.tmp"))
      << "temp file left behind after rename";
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(test::JsonChecker::valid(ss.str())) << ss.str();
  EXPECT_EQ(ss.str().find("stale"), std::string::npos);
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceGolden, WriteJsonProducesLoadableFile) {
  obs::TraceSession trace(2);
  trace.begin(0, "x", 0.0);
  trace.end(0, "x", 1e-3);
  trace.counter(1, "bytes", 42.0, 5e-4);
  trace.instant(1, "mark", 6e-4);
  const std::string path = (dir_ / "t.json").string();
  trace.writeJson(path);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(test::JsonChecker::valid(ss.str())) << ss.str();
  EXPECT_NE(ss.str().find("\"value\": 42.000"), std::string::npos);
}

#endif  // PCXX_OBS_ENABLED

TEST_F(TraceGolden, ObserverDoesNotChangeStreamFileBytes) {
  std::filesystem::create_directories(dir_ / "obs");
  std::filesystem::create_directories(dir_ / "plain");
  obs::MetricsRegistry reg(3);
  obs::TraceSession trace(3);
  obs::Observer observer;
  observer.metrics = &reg;
  observer.trace = &trace;
  const std::string observed = roundtrip(dir_ / "obs", &observer);
  const std::string plain = roundtrip(dir_ / "plain", nullptr);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(observed, plain)
      << "attaching an observer altered the stream file";
}

}  // namespace
