// Unit tests for the storage backends (memory and POSIX).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "src/pfs/backend.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::pfs;

class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "posix") {
      dir_ = std::filesystem::temp_directory_path() /
             ("pcxx_backend_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir_);
      storage_ = std::make_unique<PosixStorage>((dir_ / "file").string());
    } else {
      storage_ = std::make_unique<MemStorage>();
    }
  }
  void TearDown() override {
    storage_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<StorageBackend> storage_;
  std::filesystem::path dir_;
};

TEST_P(BackendTest, StartsEmpty) {
  EXPECT_EQ(storage_->size(), 0u);
  ByteBuffer out(10);
  EXPECT_EQ(storage_->readAt(0, out), 0u);
}

TEST_P(BackendTest, WriteReadRoundTrip) {
  ByteBuffer data{1, 2, 3, 4, 5};
  storage_->writeAt(0, data);
  EXPECT_EQ(storage_->size(), 5u);
  ByteBuffer out(5);
  EXPECT_EQ(storage_->readAt(0, out), 5u);
  EXPECT_EQ(out, data);
}

TEST_P(BackendTest, WriteBeyondEndCreatesHole) {
  ByteBuffer data{9, 9};
  storage_->writeAt(100, data);
  EXPECT_EQ(storage_->size(), 102u);
  ByteBuffer out(102);
  EXPECT_EQ(storage_->readAt(0, out), 102u);
  EXPECT_EQ(out[50], 0);  // hole reads as zero
  EXPECT_EQ(out[100], 9);
}

TEST_P(BackendTest, PartialReadAtEof) {
  ByteBuffer data{1, 2, 3};
  storage_->writeAt(0, data);
  ByteBuffer out(10);
  EXPECT_EQ(storage_->readAt(1, out), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
}

TEST_P(BackendTest, OverwriteInPlace) {
  storage_->writeAt(0, ByteBuffer{1, 2, 3, 4});
  storage_->writeAt(1, ByteBuffer{9, 9});
  ByteBuffer out(4);
  storage_->readAt(0, out);
  EXPECT_EQ(out, (ByteBuffer{1, 9, 9, 4}));
}

TEST_P(BackendTest, TruncateShrinksAndGrows) {
  storage_->writeAt(0, ByteBuffer{1, 2, 3, 4});
  storage_->truncate(2);
  EXPECT_EQ(storage_->size(), 2u);
  storage_->truncate(6);
  EXPECT_EQ(storage_->size(), 6u);
  ByteBuffer out(6);
  EXPECT_EQ(storage_->readAt(0, out), 6u);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[3], 0);  // regrown region is zero
}

TEST_P(BackendTest, SyncSucceeds) {
  storage_->writeAt(0, ByteBuffer{1});
  EXPECT_NO_THROW(storage_->sync());
}

TEST_P(BackendTest, LargeWrite) {
  ByteBuffer big(3 * 1024 * 1024);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<Byte>(i * 7);
  }
  storage_->writeAt(0, big);
  ByteBuffer out(big.size());
  EXPECT_EQ(storage_->readAt(0, out), big.size());
  EXPECT_EQ(out, big);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values("memory", "posix"));

TEST(PosixStorage, PersistsAcrossReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pcxx_persist_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "f").string();
  {
    PosixStorage s(path);
    s.writeAt(0, ByteBuffer{42, 43});
    s.sync();
  }
  {
    PosixStorage s(path);
    ByteBuffer out(2);
    EXPECT_EQ(s.readAt(0, out), 2u);
    EXPECT_EQ(out[0], 42);
  }
  std::filesystem::remove_all(dir);
}

TEST(PosixStorage, OpenInMissingDirectoryThrows) {
  EXPECT_THROW(PosixStorage("/nonexistent_dir_pcxx/f"), IoError);
}

}  // namespace
