// Corruption battery for the chunk-codec stage: physical bit flips in
// compressed payloads, frame headers that lie about sizes behind VALID
// CRCs, FaultPlan-torn writes, and the contract that damage verdicts and
// salvage results stay byte-identical to the uncompressed path.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/pfs/codec.h"
#include "src/pfs/fault_plan.h"
#include "src/util/crc32.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

constexpr int kNodes = 2;
constexpr std::int64_t kElems = 96;

ByteBuffer repetitive(size_t n, int seed) {
  ByteBuffer out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<Byte>((i / 17 + static_cast<size_t>(seed)) & 0x1f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Physical frame damage at the CodecStorage level
// ---------------------------------------------------------------------------

TEST(CodecFuzz, PayloadBitFlipReadsAsZerosAndTicksDamage) {
  auto inner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 256;
  auto codec = pfs::CodecStorage::create(inner, spec, nullptr);
  const ByteBuffer data = repetitive(4 * 256, 1);
  codec->writeAt(0, data);

  // Flip one byte inside chunk 1's COMPRESSED payload.
  const std::uint64_t at =
      codec->frameOffset(1) + pfs::CodecStorage::kFrameHeaderBytes + 3;
  Byte b[1];
  ASSERT_EQ(inner->readAt(at, b), 1u);
  b[0] = static_cast<Byte>(b[0] ^ 0xff);
  inner->writeAt(at, b);

  const std::uint64_t damagedBefore = pfs::codecThreadStats().damagedChunks;
  ByteBuffer got(data.size());
  ASSERT_EQ(codec->readAt(0, got), got.size());
  EXPECT_GT(pfs::codecThreadStats().damagedChunks, damagedBefore);
  for (size_t i = 0; i < got.size(); ++i) {
    const bool inDamaged = i >= 256 && i < 512;
    ASSERT_EQ(got[i], inDamaged ? Byte{0} : data[i]) << "byte " << i;
  }
}

// Rewrite one 32-bit field of chunk `index`'s frame header and re-seal the
// header CRC (and optionally the payload CRC) so only the LIE remains
// detectable — the codec must not trust CRC-valid metadata blindly.
void patchFrameField(pfs::CodecStorage& codec, std::uint64_t index,
                     std::uint64_t fieldOffset, std::uint32_t value,
                     bool resealPayloadCrc) {
  pfs::StorageBackend& inner = codec.inner();
  const std::uint64_t frame = codec.frameOffset(index);
  ByteBuffer header(pfs::CodecStorage::kFrameHeaderBytes);
  ASSERT_EQ(inner.readAt(frame, header), header.size());
  encodeU32(value, header.data() + fieldOffset);
  if (resealPayloadCrc) {
    const std::uint32_t stored = decodeU32(header.data() + 20);
    ByteBuffer payload(stored);
    ASSERT_EQ(inner.readAt(frame + header.size(), payload), payload.size());
    encodeU32(crc32(payload), header.data() + 32);
  }
  encodeU32(crc32(std::span<const Byte>(header.data(), 36)),
            header.data() + 36);
  inner.writeAt(frame, header);
}

TEST(CodecFuzz, LyingSizesBehindValidCrcsAreDamageNotCrashes) {
  const ByteBuffer data = repetitive(3 * 256, 2);
  const auto buildVictim = [&data]() {
    auto inner = std::make_shared<pfs::MemStorage>();
    pfs::CodecSpec spec;
    spec.enabled = true;
    spec.chunkBytes = 256;
    auto codec = pfs::CodecStorage::create(inner, spec, nullptr);
    codec->writeAt(0, data);
    return std::pair(inner, codec);
  };

  struct Lie {
    const char* name;
    std::uint64_t field;  // frame-header byte offset of the u32 field
    std::uint32_t value;
    bool resealPayloadCrc;
  };
  const Lie lies[] = {
      // rawBytes > chunkBytes: bounds lie, header CRC re-sealed.
      {"rawBytes over chunk", 16, 257, false},
      // rawBytes shrunk under the real decode length: decode-mismatch lie.
      {"rawBytes shrunk", 16, 5, false},
      // storedBytes grown into the reserved zero region, payload CRC
      // re-sealed over the now-longer region so only decode catches it.
      {"storedBytes grown", 20, 200, true},
      // storedBytes truncated, payload CRC re-sealed over the prefix.
      {"storedBytes shrunk", 20, 2, true},
  };
  for (const Lie& lie : lies) {
    auto [inner, codec] = buildVictim();
    patchFrameField(*codec, 1, lie.field, lie.value, lie.resealPayloadCrc);
    const std::uint64_t damagedBefore =
        pfs::codecThreadStats().damagedChunks;
    ByteBuffer got(data.size());
    ASSERT_EQ(codec->readAt(0, got), got.size()) << lie.name;
    EXPECT_GT(pfs::codecThreadStats().damagedChunks, damagedBefore)
        << lie.name;
    for (size_t i = 0; i < got.size(); ++i) {
      const bool inDamaged = i >= 256 && i < 512;
      ASSERT_EQ(got[i], inDamaged ? Byte{0} : data[i])
          << lie.name << " byte " << i;
    }
    // The lying frame must also not break a fresh attach scan.
    auto back = pfs::CodecStorage::attach(inner, nullptr);
    EXPECT_EQ(back->size(), data.size()) << lie.name;
  }
}

TEST(CodecFuzz, PhysicalTailTruncationSurfacesAsZeroTail) {
  const ByteBuffer data = repetitive(4 * 256, 3);
  const auto buildVictim = [&data]() {
    auto inner = std::make_shared<pfs::MemStorage>();
    pfs::CodecSpec spec;
    spec.enabled = true;
    spec.chunkBytes = 256;
    auto codec = pfs::CodecStorage::create(inner, spec, nullptr);
    codec->writeAt(0, data);
    return std::pair(inner, codec);
  };

  // Case 1: tear MID-PAYLOAD (frame header intact, stored bytes short).
  // The damaged tail frame still claims its full chunk: the logical size
  // is preserved and the chunk reads as zeros.
  {
    auto [inner, codec] = buildVictim();
    const std::uint64_t payloadStart =
        codec->frameOffset(3) + pfs::CodecStorage::kFrameHeaderBytes;
    ASSERT_GT(inner->size(), payloadStart + 2);
    inner->truncate(payloadStart + (inner->size() - payloadStart) / 2);
    auto back = pfs::CodecStorage::attach(inner, nullptr);
    EXPECT_EQ(back->size(), 4 * 256u);
    ByteBuffer got(4 * 256);
    ASSERT_EQ(back->readAt(0, got), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      const bool inDamaged = i >= 3 * 256;
      ASSERT_EQ(got[i], inDamaged ? Byte{0} : data[i]) << "byte " << i;
    }
  }

  // Case 2: tear the WHOLE tail frame away (header gone too). An absent
  // frame is a hole, so the logical size shrinks to the sealed prefix —
  // exactly an unframed file's torn-tail behaviour.
  {
    auto [inner, codec] = buildVictim();
    inner->truncate(codec->frameOffset(3) + 10);  // header itself short
    auto back = pfs::CodecStorage::attach(inner, nullptr);
    EXPECT_EQ(back->size(), 3 * 256u);
    ByteBuffer got(3 * 256);
    ASSERT_EQ(back->readAt(0, got), got.size());
    EXPECT_EQ(got, ByteBuffer(data.begin(), data.begin() + 3 * 256));
  }
}

// ---------------------------------------------------------------------------
// d/stream-level equivalence with the uncompressed path
// ---------------------------------------------------------------------------

void writeRecords(pfs::Pfs& fs, const std::string& name, int records,
                  const std::string& codec) {
  test::runSpmd(kNodes, [&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.checksumData = true;
    so.codec = codec;
    so.codecChunkBytes = codec == "lz" ? 256 : 0;
    ds::OStream s(fs, &d, name, so);
    for (int r = 0; r < records; ++r) {
      g.forEachLocal([r](double& v, std::int64_t i) {
        v = static_cast<double>(r * 100 + i % 5);
      });
      s << g;
      s.write();
    }
  });
}

/// Salvage-read `name`: which records were recovered (identified by
/// content), plus the report counts.
std::pair<std::vector<int>, ds::SalvageReport> salvageRead(
    pfs::Pfs& fs, const std::string& name, int records, int nodes = kNodes,
    int prefetchDepth = 0) {
  std::vector<int> recovered;
  ds::SalvageReport report;
  test::runSpmd(nodes, [&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(kElems, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    ds::StreamOptions so;
    so.salvage = true;
    so.aioPrefetchDepth = prefetchDepth;
    ds::IStream s(fs, &d, name, so);
    std::vector<int> mine;
    while (!s.atEnd()) {
      s.read();
      if (!s.hasRecord()) break;
      s >> g;
      for (int r = 0; r < records; ++r) {
        std::int64_t bad = 0;
        g.forEachLocal([&](double& v, std::int64_t i) {
          if (v != static_cast<double>(r * 100 + i % 5)) ++bad;
        });
        if (bad == 0) mine.push_back(r);
      }
    }
    if (node.id() == 0) {
      recovered = mine;
      report = s.salvageReport();
    }
  });
  return {recovered, report};
}

// The same LOGICAL corruption applied to a framed and an unframed copy of
// the same stream must produce identical salvage verdicts: the codec's
// damage model never changes what the record layer sees.
TEST(CodecFuzz, LogicalCorruptionSalvagesIdenticallyToUncompressed) {
  for (const std::uint64_t victim : {60ull, 200ull, 420ull}) {
    pfs::Pfs fs = test::memFs();
    writeRecords(fs, "plain.ds", 3, "none");
    writeRecords(fs, "framed.ds", 3, "lz");
    // Identical logical images by construction.
    fs.corruptByte("plain.ds", victim, Byte{0xEE});
    fs.corruptByte("framed.ds", victim, Byte{0xEE});

    const auto [plainRecs, plainReport] = salvageRead(fs, "plain.ds", 3);
    const auto [framedRecs, framedReport] = salvageRead(fs, "framed.ds", 3);
    EXPECT_EQ(plainRecs, framedRecs) << "victim " << victim;
    EXPECT_EQ(plainReport.recordsRecovered, framedReport.recordsRecovered)
        << "victim " << victim;
    EXPECT_EQ(plainReport.recordsLost, framedReport.recordsLost)
        << "victim " << victim;
  }
}

// PHYSICAL damage to a compressed frame surfaces as record-layer damage
// (zeros where the chunk was), so salvage still recovers every record the
// damaged chunk does not touch — under prefetch too.
TEST(CodecFuzz, StoredBitFlipIsSalvageableRecordDamage) {
  for (const int prefetch : {0, 2}) {
    pfs::Pfs fs = test::memFs();
    writeRecords(fs, "framed.ds", 3, "lz");
    // Somewhere in the middle of the stored bytes: a frame header or a
    // compressed payload, either way at most a couple of chunks die.
    fs.corruptStoredByte("framed.ds", fs.storedFileSize("framed.ds") / 2,
                         Byte{0xEE});
    const auto [recs, report] = salvageRead(fs, "framed.ds", 3, kNodes,
                                            prefetch);
    EXPECT_GE(recs.size(), 1u) << "prefetch " << prefetch;
    // Every written record is either recovered intact or accounted as
    // lost (a zeroed chunk spanning a boundary may lose two) — never
    // silently wrong.
    EXPECT_GE(recs.size() + report.recordsLost, 3u)
        << "prefetch " << prefetch;
  }
}

// FaultPlan-torn writes: crashing at the k-th pfs op leaves the same
// durable LOGICAL prefix whether or not a codec sits below (op indices are
// counted above the codec), so the post-crash salvage verdicts must agree
// exactly at every crash point.
TEST(CodecFuzz, TornWritesSalvageIdenticallyAtEveryCrashPoint) {
  // Count the ops one full write issues (fault-free run).
  pfs::Pfs probe = test::memFs();
  writeRecords(probe, "probe.ds", 3, "none");
  const std::uint64_t totalOps = probe.opCount();

  for (std::uint64_t k = 1; k < totalOps; k += 3) {
    std::vector<int> recs[2];
    ds::SalvageReport reports[2];
    for (const int framed : {0, 1}) {
      pfs::Pfs fs = test::memFs();
      pfs::FaultPlan plan;
      plan.crashAtOp(k, 4);  // 4 durable bytes of the k-th op, then crash
      fs.setFaultHook(plan.hook());
      try {
        writeRecords(fs, "f.ds", 3, framed != 0 ? "lz" : "none");
      } catch (const Error&) {
        // CrashInjected (or the peers' abort wrapper)
      }
      fs.setFaultHook(nullptr);
      if (!fs.exists("f.ds")) {
        recs[framed] = {-1};  // crashed before the file existed
        continue;
      }
      auto [r, rep] = salvageRead(fs, "f.ds", 3);
      recs[framed] = std::move(r);
      reports[framed] = rep;
    }
    EXPECT_EQ(recs[0], recs[1]) << "crash at op " << k;
    EXPECT_EQ(reports[0].recordsLost, reports[1].recordsLost)
        << "crash at op " << k;
  }
}

// Framed files must round-trip through the full read stack: prefetch
// threads (background decompression), salvage mode on a clean file, and a
// node-count change (relayout through pcxx::redist).
TEST(CodecFuzz, CleanFramedRoundtripUnderPrefetchSalvageAndRelayout) {
  pfs::Pfs fs = test::memFs();
  writeRecords(fs, "framed.ds", 3, "lz");
  for (const int nodes : {kNodes, 3}) {
    const auto [recs, report] =
        salvageRead(fs, "framed.ds", 3, nodes, /*prefetchDepth=*/2);
    EXPECT_EQ(recs, (std::vector<int>{0, 1, 2})) << nodes << " nodes";
    EXPECT_EQ(report.recordsLost, 0u) << nodes << " nodes";
  }
}

}  // namespace
