// Chunk-codec stage (pfs::CodecStorage): LZ block codec round trips,
// logical byte-space equivalence against a plain MemStorage model,
// reattach/scan recovery, dedup (in-file and cross-file) with ref
// materialization, the codec-off byte-identity golden, and the obs
// accounting contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/pfs/codec.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

// Deterministic bytes: compressible (repetitive runs) or noisy.
ByteBuffer patternBytes(size_t n, std::uint64_t seed, bool compressible) {
  ByteBuffer out(n);
  std::uint64_t s = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    if (compressible) {
      out[i] = static_cast<Byte>((i / 23 + seed) & 0x0f);
    } else {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      out[i] = static_cast<Byte>(s >> 56);
    }
  }
  return out;
}

TEST(LzCodec, CompressibleRoundtrip) {
  for (const size_t n : {16u, 100u, 4096u, 70000u}) {
    const ByteBuffer src = patternBytes(n, n, /*compressible=*/true);
    ByteBuffer packed;
    ASSERT_TRUE(pfs::lzCompress(src, packed)) << n;
    EXPECT_LT(packed.size(), src.size()) << n;
    EXPECT_EQ(pfs::lzDecompress(packed, src.size()), src) << n;
  }
}

TEST(LzCodec, IncompressibleInputIsRejectedNotMangled) {
  ByteBuffer packed;
  // Too short to ever pay for tokens.
  EXPECT_FALSE(pfs::lzCompress(patternBytes(8, 1, true), packed));
  // High-entropy bytes: no 4-byte repeats worth a match.
  EXPECT_FALSE(pfs::lzCompress(patternBytes(4096, 7, false), packed));
}

TEST(LzCodec, DecompressRejectsMalformedInput) {
  const ByteBuffer src = patternBytes(4096, 3, true);
  ByteBuffer packed;
  ASSERT_TRUE(pfs::lzCompress(src, packed));
  // Truncations of a valid stream must throw, never read out of bounds.
  for (const size_t keep : {0u, 1u, 2u, 5u}) {
    const std::span<const Byte> cut(packed.data(),
                                    std::min(keep, packed.size()));
    EXPECT_THROW(pfs::lzDecompress(cut, src.size()), FormatError) << keep;
  }
  // A wrong declared length must be detected even on an intact stream.
  EXPECT_THROW(pfs::lzDecompress(packed, src.size() - 1), FormatError);
  EXPECT_THROW(pfs::lzDecompress(packed, src.size() + 1), FormatError);
}

// The decorator must be indistinguishable from a plain byte store in the
// logical byte space: drive an identical random op sequence into both and
// compare after every step.
TEST(CodecStorage, MatchesPlainStorageModel) {
  auto inner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 256;
  auto codec = pfs::CodecStorage::create(inner, spec, nullptr);
  pfs::MemStorage model;

  std::uint64_t s = 12345;
  const auto rnd = [&s](std::uint64_t mod) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return (s >> 33) % mod;
  };
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = rnd(10);
    if (op < 5) {  // write: random offset/len, mixed compressibility
      const std::uint64_t off = rnd(4096);
      const ByteBuffer data =
          patternBytes(1 + rnd(700), s, rnd(2) == 0);
      codec->writeAt(off, data);
      model.writeAt(off, data);
    } else if (op < 8) {  // read: compare content + short-read behaviour
      const std::uint64_t off = rnd(5000);
      ByteBuffer a(1 + rnd(900)), b(a.size());
      const std::uint64_t ga = codec->readAt(off, a);
      const std::uint64_t gb = model.readAt(off, b);
      ASSERT_EQ(ga, gb) << "step " << step;
      ASSERT_EQ(a, b) << "step " << step;
    } else {  // truncate: shrink or extend (zero fill)
      const std::uint64_t target = rnd(4500);
      codec->truncate(target);
      model.truncate(target);
    }
    ASSERT_EQ(codec->size(), model.size()) << "step " << step;
  }
  // Final full-content sweep.
  ByteBuffer a(static_cast<size_t>(codec->size()));
  ByteBuffer b(a.size());
  EXPECT_EQ(codec->readAt(0, a), a.size());
  EXPECT_EQ(model.readAt(0, b), b.size());
  EXPECT_EQ(a, b);
}

TEST(CodecStorage, ReattachRecoversSizeAndContent) {
  auto inner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 128;
  ByteBuffer expect;
  {
    auto codec = pfs::CodecStorage::create(inner, spec, nullptr);
    const ByteBuffer data = patternBytes(1000, 4, true);
    codec->writeAt(0, data);
    // Sparse tail: truncate-extend leaves a hole that must survive the
    // reattach scan as zeros, and must pin the logical size.
    codec->truncate(1500);
    expect.assign(1500, Byte{0});
    std::copy(data.begin(), data.end(), expect.begin());
  }
  auto back = pfs::CodecStorage::attach(inner, nullptr);
  EXPECT_EQ(back->spec().chunkBytes, 128u);
  ASSERT_EQ(back->size(), expect.size());
  ByteBuffer got(expect.size());
  EXPECT_EQ(back->readAt(0, got), got.size());
  EXPECT_EQ(got, expect);
}

TEST(CodecStorage, WrapHelperDetectsFraming) {
  auto framedInner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 64;
  {
    auto codec = pfs::CodecStorage::create(framedInner, spec, nullptr);
    codec->writeAt(0, patternBytes(100, 9, true));
  }
  EXPECT_TRUE(pfs::CodecStorage::isFramed(*framedInner));
  auto wrapped = pfs::wrapCodecIfFramed(framedInner);
  EXPECT_NE(wrapped.get(), framedInner.get());
  EXPECT_EQ(wrapped->size(), 100u);

  auto plain = std::make_shared<pfs::MemStorage>();
  plain->writeAt(0, patternBytes(100, 9, true));
  EXPECT_FALSE(pfs::CodecStorage::isFramed(*plain));
  EXPECT_EQ(pfs::wrapCodecIfFramed(plain).get(), plain.get());
}

TEST(CodecStorage, InFileDedupAndMaterialization) {
  auto inner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 64;
  auto codec = pfs::CodecStorage::create(inner, spec, nullptr);

  const ByteBuffer chunkA = patternBytes(64, 11, true);
  const ByteBuffer chunkB = patternBytes(64, 22, true);
  codec->writeAt(0, chunkA);
  const std::uint64_t hitsBefore = pfs::codecThreadStats().dedupHits;
  codec->writeAt(64, chunkA);  // identical full chunk -> ref frame
  EXPECT_EQ(pfs::codecThreadStats().dedupHits, hitsBefore + 1);

  // Overwriting the ref TARGET must first materialize the ref: chunk 1
  // keeps reading the old content after chunk 0 changes.
  codec->writeAt(0, chunkB);
  ByteBuffer got(64);
  ASSERT_EQ(codec->readAt(64, got), 64u);
  EXPECT_EQ(got, chunkA);
  ASSERT_EQ(codec->readAt(0, got), 64u);
  EXPECT_EQ(got, chunkB);

  // And the state must survive a reattach (the scan sees a data frame
  // where the ref was materialized).
  auto back = pfs::CodecStorage::attach(inner, nullptr);
  ASSERT_EQ(back->readAt(64, got), 64u);
  EXPECT_EQ(got, chunkA);
}

TEST(CodecStorage, CrossFileDedupVerifiesBaseContentOnRead) {
  pfs::CodecSpec spec;
  spec.enabled = true;
  spec.chunkBytes = 64;
  const ByteBuffer shared = patternBytes(64, 5, true);

  auto baseInner = std::make_shared<pfs::MemStorage>();
  {
    auto base = pfs::CodecStorage::create(baseInner, spec, nullptr);
    base->writeAt(0, shared);
  }

  auto inner = std::make_shared<pfs::MemStorage>();
  pfs::CodecSpec withBase = spec;
  withBase.dedupBase = "epoch.0";
  auto codec = pfs::CodecStorage::create(inner, withBase, baseInner);
  const std::uint64_t hitsBefore = pfs::codecThreadStats().dedupHits;
  codec->writeAt(0, shared);
  EXPECT_EQ(pfs::codecThreadStats().dedupHits, hitsBefore + 1);
  ByteBuffer got(64);
  ASSERT_EQ(codec->readAt(0, got), 64u);
  EXPECT_EQ(got, shared);

  // Mutating the base must surface as DETECTED damage in the referring
  // file (content-hash re-verification), never as silently wrong bytes.
  {
    auto base = pfs::CodecStorage::attach(baseInner, nullptr);
    base->writeAt(0, patternBytes(64, 6, true));
  }
  auto reopened = pfs::CodecStorage::attach(inner, baseInner);
  const std::uint64_t damagedBefore = pfs::codecThreadStats().damagedChunks;
  ASSERT_EQ(reopened->readAt(0, got), 64u);
  EXPECT_EQ(got, ByteBuffer(64, Byte{0}));
  EXPECT_GT(pfs::codecThreadStats().damagedChunks, damagedBefore);
}

// ---------------------------------------------------------------------------
// Pfs / d-stream integration
// ---------------------------------------------------------------------------

class CodecFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("PCXX_CODEC");
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_codec_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("PCXX_CODEC");
    std::filesystem::remove_all(dir_);
  }

  pfs::Pfs posixFs() {
    pfs::PfsConfig cfg;
    cfg.backend = pfs::PfsConfig::Backend::Posix;
    cfg.dir = dir_.string();
    return pfs::Pfs(cfg);
  }

  void writeStream(pfs::Pfs& fs, const std::string& name,
                   const ds::StreamOptions& so = {}) {
    test::runSpmd(2, [&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(64, &P, coll::DistKind::Block);
      coll::Collection<double> g(&d);
      ds::OStream s(fs, &d, name, so);
      for (int r = 0; r < 2; ++r) {
        g.forEachLocal([r](double& v, std::int64_t i) {
          v = static_cast<double>(r);  // compressible payload
          (void)i;
        });
        s << g;
        s.write();
      }
    });
  }

  ByteBuffer fileBytes(const std::string& name) {
    std::ifstream in(dir_ / name, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    ByteBuffer out(s.size());
    std::copy(s.begin(), s.end(), reinterpret_cast<char*>(out.data()));
    return out;
  }

  std::filesystem::path dir_;
};

TEST_F(CodecFiles, CodecNoneIsByteIdenticalToDefaultFormat) {
  pfs::Pfs fs = posixFs();
  writeStream(fs, "g0.ds");  // default: no codec configured anywhere
  ds::StreamOptions none;
  none.codec = "none";
  writeStream(fs, "g1.ds", none);
  const ByteBuffer a = fileBytes("g0.ds");
  const ByteBuffer b = fileBytes("g1.ds");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And neither carries codec framing.
  EXPECT_NE(std::string(reinterpret_cast<const char*>(a.data()), 8),
            "PCXXCDC1");
}

TEST_F(CodecFiles, LzFramedFileReadsBackIdentical) {
  pfs::Pfs fs = posixFs();
  writeStream(fs, "plain.ds");
  ds::StreamOptions lz;
  lz.codec = "lz";
  lz.codecChunkBytes = 1024;
  writeStream(fs, "framed.ds", lz);

  const ByteBuffer framed = fileBytes("framed.ds");
  ASSERT_GE(framed.size(), 8u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(framed.data()), 8),
            "PCXXCDC1");

  // Logical bytes (what any reader sees) are identical to the plain file.
  const ByteBuffer plain = fileBytes("plain.ds");
  test::runSpmd(2, [&](rt::Node& node) {
    auto f = fs.open(node, "framed.ds", pfs::OpenMode::Read);
    ASSERT_EQ(f->size(), plain.size());
    ByteBuffer logical(plain.size());
    EXPECT_EQ(f->readAt(node, 0, logical), logical.size());
    EXPECT_EQ(logical, plain);
  });

  // The repetitive payload must actually shrink on the wire.
  EXPECT_LT(fs.storedFileSize("framed.ds"),
            fs.storedFileSize("plain.ds") +
                pfs::CodecStorage::kFileHeaderBytes);
}

TEST_F(CodecFiles, EnvVariableForcesAndSuppressesFraming) {
  {
    ::setenv("PCXX_CODEC", "lz", 1);
    pfs::Pfs fs = posixFs();  // env parsed at construction
    writeStream(fs, "forced.ds");
    const ByteBuffer raw = fileBytes("forced.ds");
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(raw.data()), 8),
              "PCXXCDC1");
  }
  {
    ::setenv("PCXX_CODEC", "off", 1);
    pfs::Pfs fs = posixFs();
    ds::StreamOptions lz;
    lz.codec = "lz";  // kill switch beats the per-stream request
    writeStream(fs, "killed.ds", lz);
    const ByteBuffer raw = fileBytes("killed.ds");
    EXPECT_NE(std::string(reinterpret_cast<const char*>(raw.data()), 8),
              "PCXXCDC1");
  }
}

TEST_F(CodecFiles, ObsCountersAccountForCodecTraffic) {
  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;

  pfs::PfsConfig cfg;  // memory backend
  cfg.codec.enabled = true;
  cfg.codec.chunkBytes = 1024;
  pfs::Pfs fs(cfg);
  rt::Machine m(2);
  m.attachObserver(observer);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(64, &P, coll::DistKind::Block);
    coll::Collection<double> g(&d);
    g.forEachLocal([](double& v, std::int64_t) { v = 1.0; });
    ds::OStream s(fs, &d, "obs.ds");
    s << g;
    s.write();
    coll::Collection<double> back(&d);
    ds::IStream in(fs, &d, "obs.ds");
    in.read();
    in >> back;
  });

  const obs::NodeSnapshot merged = reg.snapshot().merged;
  const std::uint64_t raw =
      merged.counter(obs::Counter::PfsCodecRawBytes);
  const std::uint64_t stored =
      merged.counter(obs::Counter::PfsCodecStoredBytes);
  EXPECT_GT(raw, 0u);
  EXPECT_GT(stored, 0u);
  EXPECT_LT(stored, raw);  // repetitive doubles compress
  EXPECT_EQ(merged.counter(obs::Counter::PfsCodecDamagedChunks), 0u);
}

TEST_F(CodecFiles, CheckpointDedupAcrossEpochsStoresRefsAndRestores) {
  obs::MetricsRegistry reg(2);
  obs::Observer observer;
  observer.metrics = &reg;
  pfs::Pfs fs = test::memFs();
  ds::CheckpointOptions co;
  co.baseName = "ckpt";
  co.dedupAcrossEpochs = true;
  co.keepLast = 1;

  rt::Machine m(2);
  m.attachObserver(observer);
  m.run([&](rt::Node& node) {
    coll::Processors P;
    // Large enough that whole 64 KiB chunks repeat across epochs (dedup
    // only ever replaces FULL chunks).
    coll::Distribution d(1 << 16, &P, coll::DistKind::Block);
    coll::Collection<double> data(&d);
    ds::CheckpointManager mgr(fs, co);
    // Epoch 0, then an epoch 1 with identical content: cross-epoch dedup
    // should replace nearly every data chunk with a reference.
    data.forEachLocal([](double& v, std::int64_t g) {
      v = static_cast<double>(g % 7);
    });
    mgr.save(data);
    mgr.save(data);

    coll::Collection<double> back(&d);
    ds::CheckpointManager fresh(fs, co);
    EXPECT_EQ(fresh.restoreLatest(back), 1);
    std::int64_t bad = 0;
    back.forEachLocal([&](double& v, std::int64_t g) {
      if (v != static_cast<double>(g % 7)) ++bad;
    });
    EXPECT_EQ(bad, 0);
    if (node.id() == 0) {
      // Dedup retention: epoch 0 (the reference target) must survive
      // keepLast = 1.
      EXPECT_TRUE(fs.exists("ckpt.0"));
      EXPECT_TRUE(fs.exists("ckpt.1"));
    }
  });
  // Epoch 1 stored references instead of payload for its repeated chunks.
  EXPECT_GT(reg.snapshot().merged.counter(obs::Counter::PfsCodecDedupHits),
            0u);
}

}  // namespace
