// Fault-injection tests: storage failures surface as typed IoError without
// deadlocking the machine, and the hook observes real access patterns.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/pfs/parallel_file.h"
#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::pfs;

TEST(Fault, HookSeesEveryAccess) {
  Pfs fs{PfsConfig{}};
  std::atomic<int> writes{0};
  std::atomic<int> reads{0};
  fs.setFaultHook([&](const OpContext& op) {
    (op.kind == OpKind::Write ? writes : reads).fetch_add(1);
    EXPECT_EQ(op.file, "hooked");
  });
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "hooked", OpenMode::Create);
    ByteBuffer mine(8, 1);
    f->writeOrdered(node, mine);  // one storage write per node
    f->seekShared(node, 0);
    ByteBuffer back(8);
    f->readOrdered(node, back);
  });
  EXPECT_EQ(writes.load(), 2);
  EXPECT_EQ(reads.load(), 2);
}

TEST(Fault, InjectedWriteFailurePropagates) {
  Pfs fs{PfsConfig{}};
  fs.setFaultHook([](const OpContext& op) {
    if (op.kind == OpKind::Write) {
      throw IoError("injected: device full");
    }
  });
  rt::Machine m(4);
  EXPECT_THROW(m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    ByteBuffer mine(8, 1);
    f->writeOrdered(node, mine);
  }),
               IoError);
}

TEST(Fault, FailNthOperation) {
  Pfs fs{PfsConfig{}};
  fs.setFaultHook([](const OpContext& op) {
    if (op.opIndex == 3) {
      throw IoError("injected at op 3");
    }
  });
  rt::Machine m(1);
  EXPECT_THROW(m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    for (int i = 0; i < 10; ++i) {
      f->writeAt(node, static_cast<std::uint64_t>(i), ByteBuffer{1});
    }
  }),
               IoError);
  EXPECT_EQ(fs.opCount(), 4u);  // ops 0..3 attempted
}

TEST(Fault, SingleNodeFaultAbortsWholeMachine) {
  Pfs fs{PfsConfig{}};
  fs.setFaultHook([](const OpContext& op) {
    if (op.nodeId == 1 && op.kind == OpKind::Write) {
      throw IoError("node 1's disk died");
    }
  });
  rt::Machine m(4);
  EXPECT_THROW(m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    ByteBuffer mine(8, 1);
    f->writeOrdered(node, mine);
    // Unreached: the abort must wake nodes 0, 2, 3 out of the collective.
    node.barrier();
  }),
               Error);
  EXPECT_TRUE(m.aborted());
}

TEST(Fault, HookClearedStopsFiring) {
  Pfs fs{PfsConfig{}};
  std::atomic<int> calls{0};
  fs.setFaultHook([&](const OpContext&) { calls.fetch_add(1); });
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer{1});
  });
  EXPECT_EQ(calls.load(), 1);
  fs.setFaultHook(nullptr);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f2", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer{1});
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Fault, CorruptByteAlters) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "c", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer{1, 2, 3});
  });
  fs.corruptByte("c", 1, 0xFF);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "c", OpenMode::Read);
    ByteBuffer out(3);
    f->readAt(node, 0, out);
    EXPECT_EQ(out[1], 0xFF);
  });
}

TEST(Fault, TruncateFileShortensReads) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "t", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(100, 5));
  });
  fs.truncateFile("t", 10);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "t", OpenMode::Read);
    EXPECT_EQ(f->size(), 10u);
  });
}

TEST(OpRecorder, CapturesAccessPatternAsAFaultHook) {
  Pfs fs{PfsConfig{}};
  OpRecorder rec;
  fs.setFaultHook(rec.hook());
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "rec", OpenMode::Create);
    f->writeAt(node, static_cast<std::uint64_t>(node.id()) * 32,
               ByteBuffer(32, 9));
    ByteBuffer back(32);
    f->readAt(node, 0, back);
  });
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_EQ(rec.totalBytes(OpKind::Write), 64u);
  EXPECT_EQ(rec.totalBytes(OpKind::Read), 64u);
  // Fault hooks run before the access: duration is never filled in.
  for (const OpContext& op : rec.ops()) {
    EXPECT_EQ(op.opDurationSeconds, 0.0);
    EXPECT_EQ(op.file, "rec");
  }
  rec.clear();
  EXPECT_EQ(rec.count(), 0u);
}

TEST(ObserveHook, RecordsModeledDurationsAfterEachAccess) {
  PfsConfig cfg;
  cfg.perf = paragonParams();
  Pfs fs(cfg);
  OpRecorder rec;
  fs.setObserveHook(rec.hook());
  rt::Machine m(2, rt::CommModel{100e-6, 1.25e-8});
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "obs", OpenMode::Create);
    ByteBuffer mine(4096, 7);
    f->writeOrdered(node, mine);
    f->seekShared(node, 0);
    ByteBuffer back(4096);
    f->readOrdered(node, back);
  });
  // One write and one read context per node.
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_EQ(rec.totalBytes(OpKind::Write), 8192u);
  EXPECT_EQ(rec.totalBytes(OpKind::Read), 8192u);
  EXPECT_GT(rec.totalSeconds(), 0.0);
  for (const OpContext& op : rec.ops()) {
    EXPECT_GT(op.opDurationSeconds, 0.0) << "op " << op.opIndex;
  }
  // Observe hooks must not fire once cleared.
  fs.setObserveHook(nullptr);
  rec.clear();
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "obs2", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(8, 1));
  });
  EXPECT_EQ(rec.count(), 0u);
}

TEST(ObserveHook, RunsEvenWhenNoFaultHookIsInstalled) {
  Pfs fs{PfsConfig{}};
  OpRecorder rec;
  fs.setObserveHook(rec.hook());
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "solo", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(16, 3));
  });
  ASSERT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.ops()[0].kind, OpKind::Write);
  EXPECT_EQ(rec.ops()[0].bytes, 16u);
  EXPECT_EQ(rec.ops()[0].nodeId, 0);
}

}  // namespace
