// Tests for the parallel file system: node-order collective I/O, shared
// cursor, namespace semantics, and cross-machine persistence.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/pfs/parallel_file.h"
#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::pfs;

class ParallelFileTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFileTest, WriteOrderedLandsInNodeOrder) {
  const int p = GetParam();
  Pfs fs{PfsConfig{}};
  rt::Machine m(p);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "ordered", OpenMode::Create);
    // Node i writes i+1 bytes of value i.
    ByteBuffer mine(static_cast<size_t>(node.id() + 1),
                    static_cast<Byte>(node.id()));
    const auto myOffset = f->writeOrdered(node, mine);
    // Offset equals the sum of lower-node block sizes.
    std::uint64_t expected = 0;
    for (int i = 0; i < node.id(); ++i) {
      expected += static_cast<std::uint64_t>(i + 1);
    }
    EXPECT_EQ(myOffset, expected);
    node.barrier();
    // The whole file is the node blocks concatenated in node order.
    const std::uint64_t total =
        static_cast<std::uint64_t>(p) * (p + 1) / 2;
    EXPECT_EQ(f->size(), total);
    if (node.id() == 0) {
      ByteBuffer all(static_cast<size_t>(total));
      EXPECT_EQ(f->readAt(node, 0, all), total);
      size_t pos = 0;
      for (int i = 0; i < p; ++i) {
        for (int k = 0; k <= i; ++k) {
          EXPECT_EQ(all[pos++], static_cast<Byte>(i));
        }
      }
    }
  });
}

TEST_P(ParallelFileTest, ReadOrderedRoundTrip) {
  const int p = GetParam();
  Pfs fs{PfsConfig{}};
  rt::Machine m(p);
  m.run([&](rt::Node& node) {
    {
      auto f = fs.open(node, "rt", OpenMode::Create);
      ByteBuffer mine(static_cast<size_t>(3 * (node.id() + 1)),
                      static_cast<Byte>(node.id() + 100));
      f->writeOrdered(node, mine);
    }
    {
      auto f = fs.open(node, "rt", OpenMode::Read);
      ByteBuffer mine(static_cast<size_t>(3 * (node.id() + 1)));
      const auto off = f->readOrdered(node, mine);
      (void)off;
      for (Byte b : mine) {
        EXPECT_EQ(b, static_cast<Byte>(node.id() + 100));
      }
    }
  });
}

TEST_P(ParallelFileTest, SharedCursorAdvancesAcrossRecords) {
  const int p = GetParam();
  Pfs fs{PfsConfig{}};
  rt::Machine m(p);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "cursor", OpenMode::Create);
    EXPECT_EQ(f->sharedOffset(), 0u);
    ByteBuffer block(4, 1);
    f->writeOrdered(node, block);
    EXPECT_EQ(f->sharedOffset(), static_cast<std::uint64_t>(4 * p));
    f->writeOrdered(node, block);
    EXPECT_EQ(f->sharedOffset(), static_cast<std::uint64_t>(8 * p));
    f->seekShared(node, 4);
    EXPECT_EQ(f->sharedOffset(), 4u);
  });
}

TEST_P(ParallelFileTest, ZeroLengthBlocksAllowed) {
  const int p = GetParam();
  Pfs fs{PfsConfig{}};
  rt::Machine m(p);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "zeros", OpenMode::Create);
    // Only the last node contributes data.
    ByteBuffer mine;
    if (node.id() == node.nprocs() - 1) mine = {7, 7};
    f->writeOrdered(node, mine);
    EXPECT_EQ(f->size(), 2u);

    f->seekShared(node, 0);
    ByteBuffer back(node.id() == node.nprocs() - 1 ? 2 : 0);
    f->readOrdered(node, back);
    if (!back.empty()) {
      EXPECT_EQ(back[0], 7);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ParallelFileTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelFile, ReadOrderedPastEofThrowsEverywhere) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(3);
  EXPECT_THROW(m.run([&](rt::Node& node) {
    auto f = fs.open(node, "short", OpenMode::Create);
    ByteBuffer block(2, 1);
    f->writeOrdered(node, block);
    f->seekShared(node, 0);
    ByteBuffer big(100);  // more than the file holds
    f->readOrdered(node, big);
  }),
               IoError);
}

TEST(ParallelFile, OpenMissingFileThrowsOnAllNodes) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(4);
  std::atomic<int> throwers{0};
  EXPECT_THROW(m.run([&](rt::Node& node) {
    try {
      fs.open(node, "missing", OpenMode::Read);
    } catch (const IoError&) {
      throwers.fetch_add(1);
      throw;
    }
  }),
               IoError);
  EXPECT_EQ(throwers.load(), 4);
}

TEST(ParallelFile, CreateTruncatesExisting) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    {
      auto f = fs.open(node, "trunc", OpenMode::Create);
      ByteBuffer data(50, 1);
      f->writeOrdered(node, data);
    }
    {
      auto f = fs.open(node, "trunc", OpenMode::Create);
      EXPECT_EQ(f->size(), 0u);
    }
  });
}

TEST(ParallelFile, FilePersistsAcrossMachines) {
  // A checkpoint written by one machine must be readable by another with a
  // different node count — the memory backend keeps the namespace.
  Pfs fs{PfsConfig{}};
  {
    rt::Machine writer(4);
    writer.run([&](rt::Node& node) {
      auto f = fs.open(node, "xmachine", OpenMode::Create);
      ByteBuffer mine(10, static_cast<Byte>(node.id()));
      f->writeOrdered(node, mine);
    });
  }
  {
    rt::Machine reader(2);
    reader.run([&](rt::Node& node) {
      auto f = fs.open(node, "xmachine", OpenMode::Read);
      EXPECT_EQ(f->size(), 40u);
      ByteBuffer mine(20);
      f->readOrdered(node, mine);
      // Node 0 sees writer-node-0 then writer-node-1 blocks, etc.
      EXPECT_EQ(mine[0], static_cast<Byte>(2 * node.id()));
      EXPECT_EQ(mine[19], static_cast<Byte>(2 * node.id() + 1));
    });
  }
}

TEST(ParallelFile, RemoveAndExists) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    fs.open(node, "gone", OpenMode::Create);
    node.barrier();
    EXPECT_TRUE(fs.exists("gone"));
    fs.remove(node, "gone");
    EXPECT_FALSE(fs.exists("gone"));
  });
}

TEST(ParallelFile, PosixBackendWritesRealFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pcxx_pfsposix_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  PfsConfig cfg;
  cfg.backend = PfsConfig::Backend::Posix;
  cfg.dir = dir.string();
  Pfs fs(cfg);
  rt::Machine m(3);
  m.run([&](rt::Node& node) {
    // Explicitly unframed: the assertion below pins the on-disk byte count,
    // which a PCXX_CODEC-enabled environment would otherwise change.
    auto f = fs.open(node, "real.bin", OpenMode::Create, CodecSpec{});
    ByteBuffer mine(4, static_cast<Byte>(node.id()));
    f->writeOrdered(node, mine);
    f->sync(node);
  });
  EXPECT_EQ(std::filesystem::file_size(dir / "real.bin"), 12u);
  std::filesystem::remove_all(dir);
}

TEST(ParallelFile, OpCountTracksStorageAccesses) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "ops", OpenMode::Create);
    if (node.id() == 0) {
      f->writeAt(node, 0, ByteBuffer{1});
    }
    node.barrier();
  });
  EXPECT_EQ(fs.opCount(), 1u);
}

}  // namespace
