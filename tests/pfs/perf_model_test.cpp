// Tests for the virtual-time performance model: the mechanisms DESIGN.md §6
// documents (small-op latency cliff, serialized I/O queues, bulk cache knee,
// collective sync scaling, bookkeeping charges).
#include <gtest/gtest.h>

#include "src/pfs/parallel_file.h"
#include "src/pfs/perf_model.h"
#include "src/runtime/machine.h"

namespace {

using namespace pcxx;
using namespace pcxx::pfs;

PerfParams tinyModel() {
  PerfParams p;
  p.enabled = true;
  p.name = "test";
  p.smallOpLatencyCached = 1e-3;
  p.smallOpLatencyDisk = 10e-3;
  p.smallOpCacheBytes = 1000;
  p.smallOpThreshold = 100;
  p.smallOpsSerialize = true;
  p.bulkBwCached = 1e6;
  p.bulkBwDisk = 1e5;
  p.bulkCachePerNode = 10'000;
  p.collectiveSyncBase = 0.5;
  p.collectiveSyncPerNode = 0.25;
  return p;
}

TEST(PerfModel, DisabledModelChargesNothing) {
  Pfs fs{PfsConfig{}};
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    f->writeAt(node, 0, ByteBuffer(50));
    EXPECT_DOUBLE_EQ(node.clock().now(), 0.0);
  });
}

TEST(PerfModel, SmallOpsPayCachedLatencyWithinCache) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  Pfs fs(cfg);
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    const double t0 = node.clock().now();
    f->writeAt(node, 0, ByteBuffer(50));  // 50 bytes, cum 50 <= 1000
    EXPECT_NEAR(node.clock().now() - t0, 1e-3, 1e-9);
  });
}

TEST(PerfModel, SmallOpsHitDiskLatencyPastCache) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  Pfs fs(cfg);
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    // 30 writes of 50 bytes: first 20 stay under the 1000-byte cache
    // (cumWritten <= 1000), the remaining 10 pay disk latency.
    for (int i = 0; i < 30; ++i) {
      f->writeAt(node, static_cast<std::uint64_t>(i) * 50, ByteBuffer(50));
    }
    const double opensCost = fs.model().params().collectiveSync(1);
    const double expected = 20 * 1e-3 + 10 * 10e-3;
    EXPECT_NEAR(node.clock().now() - opensCost, expected, 1e-6);
  });
}

TEST(PerfModel, SerializedSmallOpsQueueAcrossNodes) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  cfg.perf.collectiveSyncBase = 0.0;
  cfg.perf.collectiveSyncPerNode = 0.0;
  Pfs fs(cfg);
  rt::Machine m(4);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    // Each node issues 5 small cached ops concurrently; they serialize
    // through one queue, so the makespan is 20 ops * 1 ms.
    for (int i = 0; i < 5; ++i) {
      f->writeAt(node,
                 static_cast<std::uint64_t>(node.id() * 5 + i) * 10,
                 ByteBuffer(10));
    }
    const double makespan = node.allreduceMax(node.clock().now());
    EXPECT_NEAR(makespan, 20e-3, 1e-6);
  });
}

TEST(PerfModel, ParallelSmallOpsWhenNotSerialized) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  cfg.perf.smallOpsSerialize = false;
  cfg.perf.collectiveSyncBase = 0.0;
  cfg.perf.collectiveSyncPerNode = 0.0;
  cfg.perf.bulkBwCached = 1e18;  // isolate latency
  cfg.perf.bulkBwDisk = 1e18;
  Pfs fs(cfg);
  rt::Machine m(4);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    for (int i = 0; i < 5; ++i) {
      f->writeAt(node,
                 static_cast<std::uint64_t>(node.id() * 5 + i) * 10,
                 ByteBuffer(10));
    }
    // SMP path: each node pays only its own 5 ops.
    const double makespan = node.allreduceMax(node.clock().now());
    EXPECT_NEAR(makespan, 5e-3, 1e-6);
  });
}

TEST(PerfModel, BulkWriteSplitsAtCacheBoundary) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  Pfs fs(cfg);
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    const double t0 = node.clock().now();
    // 2 nodes x 15000 bytes = 30000 total; cache = 2 * 10000 = 20000.
    // 20000 at 1e6 B/s + 10000 at 1e5 B/s, plus one collective sync (1.0s).
    ByteBuffer mine(15000);
    f->writeOrdered(node, mine);
    const double expected = 1.0 + 20000 / 1e6 + 10000 / 1e5;
    EXPECT_NEAR(node.clock().now() - t0, expected, 1e-6);
  });
}

TEST(PerfModel, BulkReadCachedIffFileFits) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  Pfs fs(cfg);
  rt::Machine m(2);
  m.run([&](rt::Node& node) {
    // Small file: cached read.
    {
      auto f = fs.open(node, "small", OpenMode::Create);
      f->writeOrdered(node, ByteBuffer(5000));
      f->seekShared(node, 0);
      const double t0 = node.clock().now();
      ByteBuffer back(5000);
      f->readOrdered(node, back);
      EXPECT_NEAR(node.clock().now() - t0, 1.0 + 10000 / 1e6, 1e-6);
    }
    // Large file (> 20000): disk read.
    {
      auto f = fs.open(node, "large", OpenMode::Create);
      f->writeOrdered(node, ByteBuffer(15000));
      f->seekShared(node, 0);
      const double t0 = node.clock().now();
      ByteBuffer back(15000);
      f->readOrdered(node, back);
      EXPECT_NEAR(node.clock().now() - t0, 1.0 + 30000 / 1e5, 1e-6);
    }
  });
}

TEST(PerfModel, CollectiveSyncScalesWithNodes) {
  EXPECT_DOUBLE_EQ(tinyModel().collectiveSync(4), 0.5 + 0.25 * 4);
  EXPECT_DOUBLE_EQ(tinyModel().collectiveSync(8), 0.5 + 0.25 * 8);
}

TEST(PerfModel, IoNodeScalingMultipliesBandwidth) {
  for (int ioNodes : {1, 4}) {
    PfsConfig cfg;
    cfg.perf = tinyModel();
    cfg.perf.collectiveSyncBase = 0.0;
    cfg.perf.collectiveSyncPerNode = 0.0;
    cfg.nIoNodes = ioNodes;
    Pfs fs(cfg);
    rt::Machine m(2);
    double elapsed = 0.0;
    m.run([&](rt::Node& node) {
      auto f = fs.open(node, "f", OpenMode::Create);
      ByteBuffer mine(5000);
      const double t0 = node.clock().now();
      f->writeOrdered(node, mine);
      if (node.id() == 0) elapsed = node.clock().now() - t0;
    });
    EXPECT_NEAR(elapsed, 10000.0 / (1e6 * ioNodes), 1e-9)
        << "ioNodes=" << ioNodes;
  }
}

TEST(PerfModel, LopsidedCollectiveLimitedByNodeBandwidth) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  cfg.perf.collectiveSyncBase = 0.0;
  cfg.perf.collectiveSyncPerNode = 0.0;
  cfg.perf.bulkCachePerNode = 1u << 30;  // all cached
  Pfs fs(cfg);
  rt::Machine m(4);
  m.run([&](rt::Node& node) {
    auto f = fs.open(node, "f", OpenMode::Create);
    // Node 0 writes everything: per-node cap is half the aggregate, so the
    // duration is 8000/(1e6*0.5), not 8000/1e6.
    ByteBuffer mine(node.id() == 0 ? 8000 : 0);
    const double t0 = node.clock().now();
    f->writeOrdered(node, mine);
    EXPECT_NEAR(node.clock().now() - t0, 8000 / (1e6 * 0.5), 1e-9);
  });
}

TEST(PerfModel, BookkeepingChargesPerElementAndRecord) {
  PerfParams p = tinyModel();
  p.bookkeepingPerElement = 1e-4;
  p.bookkeepingPerRecord = 0.2;
  PerfModel model(p);
  rt::Machine m(1);
  m.run([&](rt::Node& node) {
    model.chargeBookkeeping(node, 100);
    EXPECT_NEAR(node.clock().now(), 0.2 + 100 * 1e-4, 1e-12);
  });
}

TEST(PerfModel, PresetsExistAndLookupWorks) {
  EXPECT_TRUE(paragonParams().enabled);
  EXPECT_TRUE(sgiParams(1).enabled);
  EXPECT_TRUE(sgiParams(8).enabled);
  EXPECT_FALSE(noModel().enabled);
  EXPECT_EQ(paramsByName("paragon", 4).name, "paragon");
  EXPECT_EQ(paramsByName("sgi", 8).name, "sgi");
  EXPECT_FALSE(paramsByName("none", 1).enabled);
  EXPECT_THROW(paramsByName("cray", 4), UsageError);
}

TEST(PerfModel, SgiUniAndMultiDiffer) {
  // The uniprocessor and 8-way presets are distinct calibrations.
  EXPECT_NE(sgiParams(1).bulkBwCached, sgiParams(8).bulkBwCached);
  EXPECT_FALSE(sgiParams(8).smallOpsSerialize);
}

TEST(PerfModel, ResetClearsQueues) {
  PfsConfig cfg;
  cfg.perf = tinyModel();
  cfg.perf.collectiveSyncBase = 0.0;
  cfg.perf.collectiveSyncPerNode = 0.0;
  Pfs fs(cfg);
  {
    rt::Machine m(1);
    m.run([&](rt::Node& node) {
      auto f = fs.open(node, "f", OpenMode::Create);
      f->writeAt(node, 0, ByteBuffer(10));
    });
  }
  fs.model().reset();
  {
    rt::Machine m(1);
    m.run([&](rt::Node& node) {
      auto f = fs.open(node, "f2", OpenMode::Create);
      f->writeAt(node, 0, ByteBuffer(10));
      // Without reset the queue would start at the previous op's end.
      EXPECT_NEAR(node.clock().now(), 1e-3, 1e-9);
    });
  }
}

}  // namespace
