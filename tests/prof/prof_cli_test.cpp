// End-to-end tests for the pcxx-prof CLI: feed it hand-built
// pcxx-metrics-v1 / pcxx-bench-metrics-v1 / Chrome-trace artifacts and
// check the critical-path decomposition, the straggler league ordering,
// the flow-chain accounting, and every exit-code contract (0 clean,
// 2 unrecognized input, 3 decomposition off by more than --max-off-pct).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "tests/common/json_check.h"

#ifndef PCXX_PROF_PATH
#error "PCXX_PROF_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

std::pair<int, std::string> runTool(const std::string& args) {
  std::string outName = "pcxx_prof_";
  outName.append(std::to_string(::getpid())).append(".out");
  const fs::path outPath = fs::temp_directory_path() / outName;
  std::string cmd = PCXX_PROF_PATH;
  cmd.append(" ").append(args).append(" > ").append(outPath.string())
      .append(" 2>&1");
  const int rc = std::system(cmd.c_str());
  std::ifstream in(outPath);
  std::ostringstream ss;
  ss << in.rdbuf();
  fs::remove(outPath);
  return {WEXITSTATUS(rc), ss.str()};
}

class ProfCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pcxx_prof_fix_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p.string();
  }

  /// A one-cell pcxx-metrics-v1 report. Node 0 finishes last (total 2.0 s)
  /// and is therefore the critical path; its phases sum to `segmentSum`.
  std::string metricsReport(double segmentSum) {
    std::ostringstream ss;
    ss.precision(17);
    ss << R"({"schema": "pcxx-metrics-v1", "tables": [
      {"title": "tiny", "cells": [
        {"segments": 8, "bytes": 4096, "methods": [
          {"method": "pC++/streams", "total_seconds": 2.0,
           "per_node": [
             {"node": 0, "total_seconds": 2.0, "sync_wait_seconds": 0.25,
              "straggler_ops": 3, "collectives": 4,
              "aio_stall_seconds": 0.0, "aio_drain_seconds": 0.0,
              "phases": {"header": 0.5, "pfs_write": )"
       << segmentSum - 0.5 << R"(}},
             {"node": 1, "total_seconds": 1.5, "sync_wait_seconds": 0.75,
              "straggler_ops": 1, "collectives": 4,
              "aio_stall_seconds": 0.1, "aio_drain_seconds": 0.0,
              "phases": {"header": 0.5, "pfs_write": 1.0}}
           ]}]}]}]})";
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(ProfCli, CleanDecompositionPassesAndRanksStragglers) {
  const std::string report = write("report.json", metricsReport(2.0));
  const auto [rc, out] = runTool("--format=json " + report);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_TRUE(pcxx::test::JsonChecker::valid(out)) << out;
  EXPECT_NE(out.find("\"pcxx-prof-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"critical_node\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"violation\": false"), std::string::npos);
  EXPECT_NE(out.find("\"violations\": 0"), std::string::npos);
  // League order: node 0 first (3 straggler ops beat node 1's one).
  const size_t n0 = out.find("{\"node\": 0");
  const size_t n1 = out.find("{\"node\": 1");
  ASSERT_NE(n0, std::string::npos);
  ASSERT_NE(n1, std::string::npos);
  EXPECT_LT(n0, n1) << "most-blamed straggler must lead the league";
}

TEST_F(ProfCli, BrokenDecompositionFailsWithExit3) {
  // Segments sum to 2.2 s against a 2.0 s critical total: +10%, far past
  // the 1% default gate.
  const std::string report = write("broken.json", metricsReport(2.2));
  const auto [rc, out] = runTool("--format=json " + report);
  EXPECT_EQ(rc, 3) << out;
  EXPECT_NE(out.find("\"violation\": true"), std::string::npos);
  // A generous gate accepts the same report.
  const auto [rcLoose, outLoose] =
      runTool("--format=text --max-off-pct 25 " + report);
  EXPECT_EQ(rcLoose, 0) << outLoose;
}

TEST_F(ProfCli, TraceFlowAccountingCountsChainsAndStragglers) {
  // Two flow chains (hex-string ids): one terminated, one left open; one
  // rt.coll span with a causal edge and a straggler mark.
  const std::string trace = write("trace.json", R"({"traceEvents": [
    {"name": "proc", "ph": "M", "pid": 0},
    {"name": "ds.record", "ph": "s", "ts": 1, "pid": 0, "tid": 0,
     "cat": "flow", "id": "0x1"},
    {"name": "ds.record", "ph": "t", "ts": 2, "pid": 0, "tid": 1,
     "cat": "flow", "id": "0x1"},
    {"name": "ds.record", "ph": "f", "ts": 3, "pid": 0, "tid": 1,
     "cat": "flow", "id": "0x1", "bp": "e"},
    {"name": "ds.record", "ph": "s", "ts": 4, "pid": 0, "tid": 0,
     "cat": "flow", "id": "0x2"},
    {"name": "rt.coll", "ph": "B", "ts": 5, "pid": 0, "tid": 0},
    {"name": "rt.coll", "ph": "s", "ts": 6, "pid": 0, "tid": 0,
     "cat": "flow", "id": "0x8000000000000001"},
    {"name": "rt.coll_last_arrival", "ph": "i", "ts": 6, "pid": 0, "tid": 0},
    {"name": "rt.coll", "ph": "E", "ts": 7, "pid": 0, "tid": 0},
    {"name": "rt.coll", "ph": "f", "ts": 8, "pid": 0, "tid": 1,
     "cat": "flow", "id": "0x8000000000000001", "bp": "e"}
  ]})");
  const auto [rc, out] = runTool("--format=json " + trace);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("\"flow_chains\": 3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"flow_starts\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"flow_steps\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"flow_ends\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"unterminated_chains\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"coll_spans\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"coll_edges\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"straggler_marks\": 1"), std::string::npos);
}

TEST_F(ProfCli, BenchMetricsLeagueFromPerNodeSnapshots) {
  const std::string bench = write("bench.json", R"({
    "schema": "pcxx-bench-metrics-v1", "runs": [
      {"label": "plan", "metrics": {"per_node": [
        {"counters": {"rt.coll_straggler_ops": 1, "rt.collectives": 6},
         "seconds": {"rt.sync_wait_seconds": 0.9,
                     "aio.stall_seconds": 0.0, "aio.drain_seconds": 0.0}},
        {"counters": {"rt.coll_straggler_ops": 5, "rt.collectives": 6},
         "seconds": {"rt.sync_wait_seconds": 0.1,
                     "aio.stall_seconds": 0.2, "aio.drain_seconds": 0.0}}
      ]}}]})");
  const auto [rc, out] = runTool("--format=json " + bench);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("\"label\": \"plan\""), std::string::npos);
  const size_t n1 = out.find("{\"node\": 1");
  const size_t n0 = out.find("{\"node\": 0");
  ASSERT_NE(n0, std::string::npos);
  ASSERT_NE(n1, std::string::npos);
  EXPECT_LT(n1, n0) << "node 1 (5 straggler ops) must lead the league";
}

TEST_F(ProfCli, MixedArtifactsInOneInvocation) {
  const std::string report = write("report.json", metricsReport(2.0));
  const std::string trace = write("trace.json",
                                  R"({"traceEvents": []})");
  const auto [rc, out] = runTool("--format=json " + report + " " + trace);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("\"cells\""), std::string::npos);
  EXPECT_NE(out.find("\"traces\""), std::string::npos);
}

TEST_F(ProfCli, RejectsForeignAndMalformedInputs) {
  const std::string foreign = write("foreign.json", R"({"hello": "world"})");
  EXPECT_EQ(runTool(foreign).first, 2);
  const std::string broken = write("broken.txt", "not json at all");
  EXPECT_EQ(runTool(broken).first, 2);
  const std::string missing = (dir_ / "does_not_exist.json").string();
  EXPECT_EQ(runTool(missing).first, 2);
  EXPECT_EQ(runTool("").first, 2);  // no inputs → usage error
  EXPECT_EQ(runTool("--format=yaml " + foreign).first, 2);
}

}  // namespace
