// pcxx::redist plan builder: the counting-sort routing tables must agree
// with a brute-force simulation of the paper's §4.1 phase-2 exchange for
// every (writer layout, reader layout, machine size) combination — plans
// from all nodes, applied together, must reassemble every receiver's local
// element sequence byte-for-byte. Also covers the LRU plan cache and the
// cache-aware planFor() entry point.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>

#include "src/redist/redist.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

// Deterministic variable per-element payload; some elements are empty so
// the zero-size paths get exercised.
std::uint64_t sizeFor(std::int64_t g) {
  return static_cast<std::uint64_t>((g * 7 + 3) % 5);
}

ByteBuffer payloadFor(std::int64_t g) {
  ByteBuffer out(static_cast<size_t>(sizeFor(g)));
  for (size_t k = 0; k < out.size(); ++k) {
    out[k] = static_cast<Byte>((g * 31 + static_cast<std::int64_t>(k)) & 0xFF);
  }
  return out;
}

// File order: writer-proc-major, ascending global index within a node.
std::vector<std::int64_t> fileOrder(const coll::Layout& writer) {
  std::vector<std::int64_t> order;
  order.reserve(static_cast<size_t>(writer.size()));
  for (int w = 0; w < writer.nprocs(); ++w) {
    const auto locals = writer.localElements(w);
    order.insert(order.end(), locals.begin(), locals.end());
  }
  return order;
}

// Apply every node's plan in-process (no Machine): senders hand their
// groups over in group order, receivers place by recvSlot. This reproduces
// exactly what execute() does over the wire, minus the chunking, so any
// routing-table defect shows up as a byte mismatch.
void simulateExchange(const coll::Layout& writer, const coll::Layout& reader,
                      int nprocs) {
  const std::int64_t size = reader.size();
  const auto order = fileOrder(writer);
  ASSERT_EQ(static_cast<std::int64_t>(order.size()), size);

  std::vector<redist::PlanPtr> plans;
  for (int me = 0; me < nprocs; ++me) {
    plans.push_back(redist::buildPlan(writer, reader, nprocs, me));
  }

  // Chunk partition must follow the reader's local counts, in node order.
  std::int64_t at = 0;
  for (int me = 0; me < nprocs; ++me) {
    EXPECT_EQ(plans[static_cast<size_t>(me)]->chunkStart, at);
    EXPECT_EQ(plans[static_cast<size_t>(me)]->localCount,
              reader.localCount(me));
    EXPECT_EQ(plans[static_cast<size_t>(me)]->chunkCount,
              plans[static_cast<size_t>(me)]->localCount);
    at += plans[static_cast<size_t>(me)]->chunkCount;
  }
  EXPECT_EQ(at, size);

  // Sender/receiver group sizes must pair up.
  for (int s = 0; s < nprocs; ++s) {
    for (int r = 0; r < nprocs; ++r) {
      if (s == r) {
        EXPECT_EQ(plans[static_cast<size_t>(r)]->recvCountFrom(s), 0)
            << "self group must never be transmitted";
        continue;
      }
      EXPECT_EQ(plans[static_cast<size_t>(s)]->sendCountTo(r),
                plans[static_cast<size_t>(r)]->recvCountFrom(s))
          << "send " << s << " -> recv " << r;
    }
  }

  // Per-node phase-1 chunks (concatenated element payloads in file order).
  std::vector<std::vector<ByteBuffer>> chunkElems(
      static_cast<size_t>(nprocs));
  for (int me = 0; me < nprocs; ++me) {
    const auto& p = *plans[static_cast<size_t>(me)];
    for (std::int64_t k = 0; k < p.chunkCount; ++k) {
      chunkElems[static_cast<size_t>(me)].push_back(
          payloadFor(order[static_cast<size_t>(p.chunkStart + k)]));
    }
  }

  // Deliver: self groups locally, peer groups in group (= file) order.
  std::vector<std::vector<ByteBuffer>> placed(static_cast<size_t>(nprocs));
  for (int me = 0; me < nprocs; ++me) {
    placed[static_cast<size_t>(me)].resize(
        static_cast<size_t>(plans[static_cast<size_t>(me)]->localCount));
  }
  for (int s = 0; s < nprocs; ++s) {
    const auto& sp = *plans[static_cast<size_t>(s)];
    for (int r = 0; r < nprocs; ++r) {
      const auto& rp = *plans[static_cast<size_t>(r)];
      for (std::int64_t i = 0; i < sp.sendCountTo(r); ++i) {
        const std::int64_t k =
            sp.sendIdx[static_cast<size_t>(sp.sendStarts[static_cast<size_t>(r)] + i)];
        const ByteBuffer& payload =
            chunkElems[static_cast<size_t>(s)][static_cast<size_t>(k)];
        std::int64_t slot;
        if (r == s) {
          slot = sp.sendSlot[static_cast<size_t>(
              sp.sendStarts[static_cast<size_t>(r)] + i)];
        } else {
          slot = rp.recvSlot[static_cast<size_t>(
              rp.recvStarts[static_cast<size_t>(s)] + i)];
          // Sender and receiver tables must agree on the destination slot.
          EXPECT_EQ(slot, sp.sendSlot[static_cast<size_t>(
                              sp.sendStarts[static_cast<size_t>(r)] + i)]);
        }
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, static_cast<std::int64_t>(
                            placed[static_cast<size_t>(r)].size()));
        placed[static_cast<size_t>(r)][static_cast<size_t>(slot)] = payload;
      }
    }
  }

  // Every receiver must hold its local elements in ascending-global order.
  for (int r = 0; r < nprocs; ++r) {
    const auto myGlobals = reader.localElements(r);
    ASSERT_EQ(placed[static_cast<size_t>(r)].size(), myGlobals.size());
    for (size_t j = 0; j < myGlobals.size(); ++j) {
      EXPECT_EQ(placed[static_cast<size_t>(r)][j], payloadFor(myGlobals[j]))
          << "node " << r << " slot " << j << " (global " << myGlobals[j]
          << ")";
    }
  }
}

coll::Layout make(std::int64_t size, int nprocs, coll::DistKind kind,
                  std::int64_t bs = 1) {
  return coll::Layout(coll::Distribution(size, nprocs, kind, bs));
}

TEST(BuildPlan, BlockToCyclic) {
  simulateExchange(make(17, 3, coll::DistKind::Block),
                   make(17, 4, coll::DistKind::Cyclic), 4);
}

TEST(BuildPlan, CyclicToBlockFewerNodes) {
  simulateExchange(make(17, 5, coll::DistKind::Cyclic),
                   make(17, 2, coll::DistKind::Block), 2);
}

TEST(BuildPlan, BlockCyclicToBlockCyclic) {
  simulateExchange(make(23, 4, coll::DistKind::BlockCyclic, 2),
                   make(23, 4, coll::DistKind::BlockCyclic, 3), 4);
}

TEST(BuildPlan, EmptyChunkNodes) {
  // 3 elements over 5 reading nodes: nodes 3 and 4 have empty chunks AND
  // empty local sets; the plan must still be a consistent (empty) routing.
  simulateExchange(make(3, 2, coll::DistKind::Block),
                   make(3, 5, coll::DistKind::Block), 5);
}

TEST(BuildPlan, SingleElement) {
  simulateExchange(make(1, 3, coll::DistKind::Cyclic),
                   make(1, 2, coll::DistKind::Block), 2);
}

TEST(BuildPlan, NonClosedFormReader) {
  // Reader alignment is a strict subset of the template (stride 2 over a
  // larger distribution), forcing the planner's O(size) enumeration path.
  coll::Distribution d(26, 3, coll::DistKind::Block, 1);
  coll::Align a(12, 2, 1);
  simulateExchange(make(12, 4, coll::DistKind::Cyclic),
                   coll::Layout(d, a), 3);
}

TEST(BuildPlan, NonClosedFormWriter) {
  coll::Distribution d(30, 2, coll::DistKind::Cyclic, 1);
  coll::Align a(10, 3, 0);
  simulateExchange(coll::Layout(d, a), make(10, 4, coll::DistKind::Block), 4);
}

TEST(BuildPlan, SizeMismatchIsFormatError) {
  EXPECT_THROW(redist::buildPlan(make(10, 2, coll::DistKind::Block),
                                 make(12, 2, coll::DistKind::Block), 2, 0),
               FormatError);
}

TEST(BuildPlan, BadShapeIsUsageError) {
  const auto l = make(10, 2, coll::DistKind::Block);
  EXPECT_THROW(redist::buildPlan(l, l, 0, 0), UsageError);
  EXPECT_THROW(redist::buildPlan(l, l, 2, 2), UsageError);
}

TEST(PlanKey, DistinguishesAllComponents) {
  const auto a = make(10, 2, coll::DistKind::Block);
  const auto b = make(10, 2, coll::DistKind::Cyclic);
  const std::string base = redist::planKey(a, b, 2, 0);
  EXPECT_NE(base, redist::planKey(b, a, 2, 0));  // sides swapped
  EXPECT_NE(base, redist::planKey(a, b, 2, 1));  // different node
  EXPECT_NE(base, redist::planKey(a, b, 4, 0));  // different machine size
  EXPECT_EQ(base, redist::planKey(a, b, 2, 0));  // deterministic
}

TEST(PlanCache, LruEvictsOldest) {
  redist::PlanCache cache(2);
  const auto plan = redist::buildPlan(make(4, 2, coll::DistKind::Block),
                                      make(4, 2, coll::DistKind::Cyclic), 2, 0);
  cache.put("a", plan);
  cache.put("b", plan);
  cache.put("c", plan);  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
}

TEST(PlanCache, GetRefreshesLruPosition) {
  redist::PlanCache cache(2);
  const auto plan = redist::buildPlan(make(4, 2, coll::DistKind::Block),
                                      make(4, 2, coll::DistKind::Cyclic), 2, 0);
  cache.put("a", plan);
  cache.put("b", plan);
  EXPECT_NE(cache.get("a"), nullptr);  // "b" is now least recently used
  cache.put("c", plan);                // evicts "b"
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
}

TEST(PlanCache, ZeroCapacityDisablesCaching) {
  redist::PlanCache cache(0);
  const auto plan = redist::buildPlan(make(4, 2, coll::DistKind::Block),
                                      make(4, 2, coll::DistKind::Cyclic), 2, 0);
  cache.put("a", plan);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(PlanCache, SetCapacityShrinks) {
  redist::PlanCache cache(8);
  const auto plan = redist::buildPlan(make(4, 2, coll::DistKind::Block),
                                      make(4, 2, coll::DistKind::Cyclic), 2, 0);
  cache.put("a", plan);
  cache.put("b", plan);
  cache.put("c", plan);
  cache.setCapacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.get("c"), nullptr);  // most recent survives
}

TEST(PlanFor, SharesPlansAcrossLookups) {
  test::runSpmd(3, [](rt::Node& node) {
    node.barrier();
    if (node.id() == 0) redist::PlanCache::instance().clear();
    node.barrier();
    const auto writer = make(19, 5, coll::DistKind::Cyclic);
    const auto reader = make(19, 3, coll::DistKind::Block);
    const auto first = redist::planFor(writer, reader, node);
    const auto second = redist::planFor(writer, reader, node);
    EXPECT_EQ(first.get(), second.get()) << "second lookup must be a hit";
    node.barrier();
    if (node.id() == 0) {
      // One entry per node (the key includes the node id).
      EXPECT_EQ(redist::PlanCache::instance().size(), 3u);
    }
    node.barrier();
  });
}

// Direct execute() exercise with a tiny chunk budget: many rounds, element
// payloads split across round boundaries, zero-size elements consumed at
// zero cost — then byte-compared against the brute-force expectation.
TEST(Execute, ChunkedRoundsReassembleLocalOrder) {
  const std::int64_t size = 29;
  for (const std::uint64_t chunkBytes : {std::uint64_t{0}, std::uint64_t{1},
                                         std::uint64_t{3},
                                         std::uint64_t{4096}}) {
    test::runSpmd(4, [&](rt::Node& node) {
      const auto writer = make(size, 3, coll::DistKind::Cyclic);
      const auto reader = make(size, 4, coll::DistKind::Block);
      const auto plan = redist::buildPlan(writer, reader, 4, node.id());
      const auto order = fileOrder(writer);

      ByteBuffer chunk;
      std::vector<std::uint64_t> chunkSizes;
      for (std::int64_t k = 0; k < plan->chunkCount; ++k) {
        const auto payload =
            payloadFor(order[static_cast<size_t>(plan->chunkStart + k)]);
        chunkSizes.push_back(payload.size());
        chunk.insert(chunk.end(), payload.begin(), payload.end());
      }

      ByteBuffer buffer;
      std::vector<std::uint64_t> offsets;
      std::vector<std::uint64_t> sizes;
      redist::ExchangeScratch scratch;
      redist::execute(node, *plan, chunk, chunkSizes, chunkBytes, buffer,
                      offsets, sizes, scratch);

      const auto myGlobals = reader.localElements(node.id());
      ASSERT_EQ(sizes.size(), myGlobals.size());
      for (size_t j = 0; j < myGlobals.size(); ++j) {
        const auto expect = payloadFor(myGlobals[j]);
        ASSERT_EQ(sizes[j], expect.size()) << "chunkBytes=" << chunkBytes;
        EXPECT_EQ(0, std::memcmp(buffer.data() + offsets[j], expect.data(),
                                 expect.size()))
            << "node " << node.id() << " slot " << j
            << " chunkBytes=" << chunkBytes;
      }
    });
  }
}

}  // namespace
