// Redistribution edge layouts through the full d/stream read path: empty
// chunks when P != Q, block <-> cyclic round trips, single-element records,
// the chunk-size sweep against the legacy (pre-plan) exchange, and plan
// reuse across records and reopen-under-a-different-node-count.
#include <gtest/gtest.h>

#include <atomic>

#include "src/dstream/dstream.h"
#include "src/obs/obs.h"
#include "src/redist/redist.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct VarElem {
  int n = 0;
  double* data = nullptr;
  ~VarElem() { delete[] data; }
  VarElem() = default;
  VarElem(const VarElem&) = delete;
  VarElem& operator=(const VarElem&) = delete;
};

declareStreamInserter(VarElem& e) {
  s << e.n;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(VarElem& e) {
  s >> e.n;
  s >> pcxx::ds::array(e.data, e.n);
}

int sizeFor(std::int64_t g) { return static_cast<int>(1 + (g * 5) % 9); }

void fillElem(VarElem& e, std::int64_t g) {
  e.n = sizeFor(g);
  delete[] e.data;
  e.data = new double[static_cast<size_t>(e.n)];
  for (int k = 0; k < e.n; ++k) {
    e.data[k] = static_cast<double>(g * 1000 + k);
  }
}

std::int64_t checkElem(const VarElem& e, std::int64_t g) {
  if (e.n != sizeFor(g)) return 1;
  std::int64_t bad = 0;
  for (int k = 0; k < e.n; ++k) {
    if (e.data[k] != static_cast<double>(g * 1000 + k)) ++bad;
  }
  return bad;
}

void writeFile(pfs::Pfs& fs, int nprocs, coll::DistKind kind,
               std::int64_t elements, const char* name, int records = 1) {
  rt::Machine m(nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, kind, 3);
    coll::Collection<VarElem> out(&d);
    out.forEachLocal([](VarElem& e, std::int64_t g) { fillElem(e, g); });
    ds::OStream s(fs, &d, name);
    for (int r = 0; r < records; ++r) {
      s << out;
      s.write();
    }
  });
}

std::int64_t readAndVerify(pfs::Pfs& fs, int nprocs, coll::DistKind kind,
                           std::int64_t elements, const char* name,
                           ds::StreamOptions opts = {}, int records = 1) {
  std::atomic<std::int64_t> bad{0};
  rt::Machine m(nprocs);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, kind, 3);
    coll::Collection<VarElem> in(&d);
    ds::IStream s(fs, &d, name, opts);
    for (int r = 0; r < records; ++r) {
      s.read();
      s >> in;
      in.forEachLocal(
          [&](VarElem& e, std::int64_t g) { bad.fetch_add(checkElem(e, g)); });
    }
  });
  return bad.load();
}

TEST(RedistEdge, EmptyChunkNodesWideningRead) {
  // 3 elements read on 5 nodes: nodes 3 and 4 own nothing and read empty
  // phase-1 chunks, but still participate in every exchange round.
  pfs::Pfs fs = test::memFs();
  writeFile(fs, 2, coll::DistKind::Block, 3, "wide");
  EXPECT_EQ(readAndVerify(fs, 5, coll::DistKind::Cyclic, 3, "wide"), 0);
}

TEST(RedistEdge, EmptyChunkNodesNarrowingRead) {
  pfs::Pfs fs = test::memFs();
  writeFile(fs, 5, coll::DistKind::Block, 3, "narrow");
  EXPECT_EQ(readAndVerify(fs, 2, coll::DistKind::Cyclic, 3, "narrow"), 0);
}

TEST(RedistEdge, BlockCyclicRoundTrip) {
  // block -> cyclic -> block: read under cyclic, write what was extracted,
  // read that file back under block. Any routing defect in either
  // direction corrupts the final values.
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 37;
  writeFile(fs, 4, coll::DistKind::Block, elements, "rt1");
  rt::Machine m(3);
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> mid(&d);
    ds::IStream in(fs, &d, "rt1");
    in.read();
    in >> mid;
    ds::OStream out(fs, &d, "rt2");
    out << mid;
    out.write();
  });
  EXPECT_EQ(readAndVerify(fs, 4, coll::DistKind::Block, elements, "rt2"), 0);
}

TEST(RedistEdge, SingleElementRecord) {
  pfs::Pfs fs = test::memFs();
  writeFile(fs, 3, coll::DistKind::Block, 1, "one");
  EXPECT_EQ(readAndVerify(fs, 2, coll::DistKind::Cyclic, 1, "one"), 0);
}

TEST(RedistEdge, ChunkSizeSweepMatchesLegacyPath) {
  // The plan engine under every chunk budget — including degenerate 1-byte
  // rounds that split every element — must reproduce exactly what the
  // legacy map-based exchange (redistUsePlan = false) produces.
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 41;
  writeFile(fs, 4, coll::DistKind::Cyclic, elements, "sweep");
  for (const std::uint64_t chunkBytes :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{64}, std::uint64_t{4096}}) {
    ds::StreamOptions opts;
    opts.redistChunkBytes = chunkBytes;
    EXPECT_EQ(readAndVerify(fs, 3, coll::DistKind::Block, elements, "sweep",
                            opts),
              0)
        << "redistChunkBytes=" << chunkBytes;
  }
  ds::StreamOptions legacy;
  legacy.redistUsePlan = false;
  EXPECT_EQ(
      readAndVerify(fs, 3, coll::DistKind::Block, elements, "sweep", legacy),
      0);
}

TEST(RedistEdge, ReopenUnderDifferentNodeCounts) {
  // The plan cache key includes (nprocs, node id): reopening the same file
  // under another machine size must build fresh plans, not reuse stale
  // ones.
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 30;
  writeFile(fs, 6, coll::DistKind::Block, elements, "reopen");
  redist::PlanCache::instance().clear();
  EXPECT_EQ(readAndVerify(fs, 4, coll::DistKind::Cyclic, elements, "reopen"),
            0);
  const size_t afterFirst = redist::PlanCache::instance().size();
  EXPECT_EQ(afterFirst, 4u);  // one plan per node
  EXPECT_EQ(readAndVerify(fs, 3, coll::DistKind::Cyclic, elements, "reopen"),
            0);
  EXPECT_EQ(redist::PlanCache::instance().size(), afterFirst + 3);
}

#if PCXX_OBS_ENABLED
TEST(RedistEdge, RepeatedSameLayoutReadsHitThePlanCache) {
  pfs::Pfs fs = test::memFs();
  const std::int64_t elements = 24;
  const int nprocs = 3;
  writeFile(fs, 4, coll::DistKind::Block, elements, "hits", /*records=*/3);
  redist::PlanCache::instance().clear();

  rt::Machine m(nprocs);
  obs::MetricsRegistry reg(nprocs);
  obs::Observer observer;
  observer.metrics = &reg;
  m.attachObserver(observer);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(elements, &P, coll::DistKind::Cyclic);
    coll::Collection<VarElem> in(&d);
    ds::IStream s(fs, &d, "hits");
    for (int r = 0; r < 3; ++r) {
      s.read();
      s >> in;
      in.forEachLocal(
          [&](VarElem& e, std::int64_t g) { bad.fetch_add(checkElem(e, g)); });
    }
  });
  m.detachObserver();
  EXPECT_EQ(bad.load(), 0);

  const auto snap = reg.snapshot();
  const auto misses =
      snap.merged.counter(obs::Counter::RedistPlanMisses);
  const auto hits = snap.merged.counter(obs::Counter::RedistPlanHits);
  // First record: one miss per node. Records 2 and 3: memo hits.
  EXPECT_EQ(misses, static_cast<std::uint64_t>(nprocs));
  EXPECT_GE(hits, static_cast<std::uint64_t>(2 * nprocs));
}
#endif  // PCXX_OBS_ENABLED

}  // namespace
