// Randomized round-trip property suite: a seeded generator draws a writer
// machine size P, a reader machine size Q != P, a distribution kind for
// each side, an element-size mix, an insert interleave grouping, a header
// policy, and the overlap depths (write-behind queue and read-ahead
// prefetch, 0 = synchronous) — then asserts the write/read round trip is
// the identity (sorted read) or preserves the element multiset (unsorted
// read).
//
// Every case prints a one-line repro via SCOPED_TRACE, so a failing seed
// reproduces with a single --gtest_filter invocation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/dstream/dstream.h"
#include "src/util/rng.h"
#include "src/util/strfmt.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;

struct RElem {
  int n = 0;
  double* data = nullptr;
  std::int64_t stamp = 0;
  ~RElem() { delete[] data; }
  RElem() = default;
  RElem(const RElem&) = delete;
  RElem& operator=(const RElem&) = delete;
};

declareStreamInserter(RElem& e) {
  s << e.n;
  s << e.stamp;
  s << pcxx::ds::array(e.data, e.n);
}
declareStreamExtractor(RElem& e) {
  int n = 0;
  s >> n;
  if (n != e.n) {  // element sizes vary record to record: reallocate
    delete[] e.data;
    e.data = n > 0 ? new double[static_cast<size_t>(n)] : nullptr;
    e.n = n;
  }
  s >> e.stamp;
  s >> pcxx::ds::array(e.data, e.n);
}

/// Stateless mix of (key, record, global index, lane) — the generator for
/// element contents, usable from any node and from the host verifier.
std::uint64_t mix(std::uint64_t key, std::int64_t rec, std::int64_t g,
                  std::uint64_t lane) {
  std::uint64_t s = key ^ (static_cast<std::uint64_t>(rec) * 0xA24BAED4963EE407ull) ^
                    (static_cast<std::uint64_t>(g) * 0x9FB21C651E98DF25ull) ^
                    (lane * 0xD6E8FEB86659FD93ull);
  return splitmix64(s);
}

/// One generated case. All fields derive deterministically from the seed.
struct CaseParams {
  int writeProcs = 1, readProcs = 2;
  std::int64_t elements = 1;
  coll::DistKind writeDist = coll::DistKind::Block;
  coll::DistKind readDist = coll::DistKind::Block;
  int blockSize = 2;
  int headerPolicy = 0;
  bool checksum = false;
  bool sorted = true;
  int records = 1;
  int pattern = 0;       ///< insert interleave grouping (see below)
  int queueDepth = 0;    ///< write-behind depth (0 = sync)
  int prefetchDepth = 0; ///< read-ahead depth (0 = sync)
  int sizeModulo = 6;    ///< element payload sizes drawn in [0, modulo)
  std::uint64_t key = 0; ///< content-generator key
};

coll::DistKind kindFor(std::int64_t v) {
  switch (v % 3) {
    case 0: return coll::DistKind::Block;
    case 1: return coll::DistKind::Cyclic;
    default: return coll::DistKind::BlockCyclic;
  }
}

CaseParams deriveCase(int seed) {
  Rng rng(0x5EEDF00Dull + static_cast<std::uint64_t>(seed));
  CaseParams p;
  p.writeProcs = static_cast<int>(rng.uniformInt(1, 5));
  // Q != P by construction: rotate within [1, 5].
  p.readProcs = 1 + (p.writeProcs - 1 +
                     static_cast<int>(rng.uniformInt(1, 4))) % 5;
  p.elements = rng.uniformInt(1, 48);
  p.writeDist = kindFor(rng.uniformInt(0, 2));
  p.readDist = kindFor(rng.uniformInt(0, 2));
  p.blockSize = static_cast<int>(rng.uniformInt(1, 3));
  p.headerPolicy = static_cast<int>(rng.uniformInt(0, 2));
  p.checksum = rng.uniformInt(0, 1) == 1;
  p.sorted = rng.uniformInt(0, 1) == 1;
  p.records = static_cast<int>(rng.uniformInt(1, 3));
  p.pattern = static_cast<int>(rng.uniformInt(0, 2));
  const int depths[] = {0, 1, 2, 4};
  p.queueDepth = depths[rng.uniformInt(0, 3)];
  p.prefetchDepth = depths[rng.uniformInt(0, 3)];
  const int modulos[] = {1, 6, 19};  // all-empty / small / mixed payloads
  p.sizeModulo = modulos[rng.uniformInt(0, 2)];
  p.key = rng.next();
  return p;
}

int sizeFor(const CaseParams& p, std::int64_t rec, std::int64_t g) {
  return static_cast<int>(mix(p.key, rec, g, 0) %
                          static_cast<std::uint64_t>(p.sizeModulo));
}
std::int64_t stampFor(const CaseParams& p, std::int64_t rec, std::int64_t g) {
  return static_cast<std::int64_t>(mix(p.key, rec, g, 1) >> 1);
}
double valueFor(const CaseParams& p, std::int64_t rec, std::int64_t g,
                int k) {
  return static_cast<double>(mix(p.key, rec, g, 2 + static_cast<std::uint64_t>(k)) %
                             1000003ull) * 0.5;
}

void fill(coll::Collection<RElem>& c, const CaseParams& p, std::int64_t rec) {
  c.forEachLocal([&](RElem& e, std::int64_t g) {
    e.n = sizeFor(p, rec, g);
    e.stamp = stampFor(p, rec, g);
    delete[] e.data;
    e.data = e.n > 0 ? new double[static_cast<size_t>(e.n)] : nullptr;
    for (int k = 0; k < e.n; ++k) e.data[k] = valueFor(p, rec, g, k);
  });
}

/// Commutative content hash (order-free, so it survives unsortedRead's
/// arbitrary element placement).
std::uint64_t hashElem(int n, std::int64_t stamp, const double* data) {
  std::uint64_t h = static_cast<std::uint64_t>(stamp) * 2654435761ull +
                    static_cast<std::uint64_t>(n) * 97ull;
  for (int k = 0; k < n; ++k) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &data[k], 8);
    h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6);
  }
  return h;
}

/// Host-side expected hash for record `rec` (no machine needed).
std::uint64_t expectedHash(const CaseParams& p, std::int64_t rec) {
  std::uint64_t sum = 0;
  for (std::int64_t g = 0; g < p.elements; ++g) {
    const int n = sizeFor(p, rec, g);
    std::vector<double> data(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) data[static_cast<size_t>(k)] = valueFor(p, rec, g, k);
    sum += hashElem(n, stampFor(p, rec, g), data.data());
  }
  return sum;
}

std::int64_t verifySorted(coll::Collection<RElem>& c, const CaseParams& p,
                          std::int64_t rec) {
  std::int64_t bad = 0;
  c.forEachLocal([&](RElem& e, std::int64_t g) {
    if (e.n != sizeFor(p, rec, g) || e.stamp != stampFor(p, rec, g)) {
      ++bad;
      return;
    }
    for (int k = 0; k < e.n; ++k) {
      if (e.data[k] != valueFor(p, rec, g, k)) ++bad;
    }
  });
  return bad;
}

class RandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomRoundTrip, SeededCase) {
  const int seed = GetParam();
  const CaseParams p = deriveCase(seed);
  SCOPED_TRACE(strfmt(
      "seed=%d P=%d Q=%d elems=%lld wdist=%d rdist=%d bs=%d policy=%d "
      "crc=%d sorted=%d records=%d pattern=%d queue=%d prefetch=%d szmod=%d "
      "-- repro: roundtrip_random_test "
      "--gtest_filter='*RandomRoundTrip.SeededCase/%d'",
      seed, p.writeProcs, p.readProcs, static_cast<long long>(p.elements),
      static_cast<int>(p.writeDist), static_cast<int>(p.readDist),
      p.blockSize, p.headerPolicy, p.checksum ? 1 : 0, p.sorted ? 1 : 0,
      p.records, p.pattern, p.queueDepth, p.prefetchDepth, p.sizeModulo,
      seed));

  pfs::Pfs fs = test::memFs();

  // -- write under P nodes ---------------------------------------------------
  {
    rt::Machine m(p.writeProcs);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(p.elements, &P, p.writeDist, p.blockSize);
      coll::Collection<RElem> out(&d);
      ds::StreamOptions so;
      so.headerPolicy =
          static_cast<ds::StreamOptions::HeaderPolicy>(p.headerPolicy);
      so.checksumData = p.checksum;
      so.aioQueueDepth = p.queueDepth;
      ds::OStream s(fs, &d, "rand", so);
      for (int rec = 0; rec < p.records; ++rec) {
        fill(out, p, rec);
        switch (p.pattern) {
          case 0:
            s << out;
            break;
          case 1:
            s << out;
            s << out.field(&RElem::stamp);
            break;
          default:
            s << out.field(&RElem::stamp);
            s << out;
            break;
        }
        s.write();
      }
      s.close();
    });
  }

  // -- read under Q != P nodes ----------------------------------------------
  std::atomic<std::int64_t> badSorted{0};
  std::atomic<std::uint64_t> readHash{0};
  {
    rt::Machine m(p.readProcs);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(p.elements, &P, p.readDist, p.blockSize);
      coll::Collection<RElem> in(&d);
      ds::StreamOptions ro;
      ro.checksumData = p.checksum;
      ro.aioPrefetchDepth = p.prefetchDepth;
      ds::IStream is(fs, &d, "rand", ro);
      for (int rec = 0; rec < p.records; ++rec) {
        if (p.sorted) {
          is.read();
        } else {
          is.unsortedRead();
        }
        switch (p.pattern) {
          case 0:
            is >> in;
            break;
          case 1:
            is >> in;
            is >> in.field(&RElem::stamp);
            break;
          default:
            is >> in.field(&RElem::stamp);
            is >> in;
            break;
        }
        if (p.sorted) {
          badSorted.fetch_add(verifySorted(in, p, rec));
        } else {
          // Per-record weight keeps records distinguishable even though the
          // per-record sums are commutative.
          const std::uint64_t w = static_cast<std::uint64_t>(rec) * 2 + 1;
          in.forEachLocal([&](RElem& e, std::int64_t) {
            readHash.fetch_add(w * hashElem(e.n, e.stamp, e.data));
          });
        }
      }
      EXPECT_TRUE(is.atEnd());
      is.close();
    });
  }

  if (p.sorted) {
    EXPECT_EQ(badSorted.load(), 0);
  } else {
    std::uint64_t expect = 0;
    for (int rec = 0; rec < p.records; ++rec) {
      expect += (static_cast<std::uint64_t>(rec) * 2 + 1) * expectedHash(p, rec);
    }
    EXPECT_EQ(readHash.load(), expect);
  }
}

// 240 seeded cases: comfortably past the 200-case CI floor, and with the
// seed-derived booleans each of sync/async x sorted/unsorted x P!=Q appears
// dozens of times per run.
INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip, ::testing::Range(0, 240));

}  // namespace
