// Unit and property tests for the runtime collectives, across node counts.
#include <gtest/gtest.h>

#include <numeric>

#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::rt;

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, AllgatherU64) {
  Machine m(GetParam());
  m.run([](Node& node) {
    const auto all = node.allgatherU64(static_cast<std::uint64_t>(
        node.id() * node.id() + 1));
    ASSERT_EQ(static_cast<int>(all.size()), node.nprocs());
    for (int i = 0; i < node.nprocs(); ++i) {
      EXPECT_EQ(all[static_cast<size_t>(i)],
                static_cast<std::uint64_t>(i * i + 1));
    }
  });
}

TEST_P(CollectivesTest, AllgatherBytesVariableSizes) {
  Machine m(GetParam());
  m.run([](Node& node) {
    // Node i contributes i+1 bytes of value i.
    ByteBuffer mine(static_cast<size_t>(node.id() + 1),
                    static_cast<Byte>(node.id()));
    const auto all = node.allgatherBytes(mine);
    ASSERT_EQ(static_cast<int>(all.size()), node.nprocs());
    for (int i = 0; i < node.nprocs(); ++i) {
      EXPECT_EQ(all[static_cast<size_t>(i)].size(),
                static_cast<size_t>(i + 1));
      for (Byte b : all[static_cast<size_t>(i)]) {
        EXPECT_EQ(b, static_cast<Byte>(i));
      }
    }
  });
}

TEST_P(CollectivesTest, GatherBytesOnlyRootReceives) {
  Machine m(GetParam());
  const int root = GetParam() - 1;
  m.run([root](Node& node) {
    ByteBuffer mine{static_cast<Byte>(node.id() + 1)};
    const auto all = node.gatherBytes(root, mine);
    if (node.id() == root) {
      ASSERT_EQ(static_cast<int>(all.size()), node.nprocs());
      for (int i = 0; i < node.nprocs(); ++i) {
        ASSERT_EQ(all[static_cast<size_t>(i)].size(), 1u);
        EXPECT_EQ(all[static_cast<size_t>(i)][0], static_cast<Byte>(i + 1));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, BroadcastReplacesNonRootData) {
  Machine m(GetParam());
  m.run([](Node& node) {
    ByteBuffer data;
    if (node.id() == 0) {
      data = {10, 20, 30};
    } else {
      data = {static_cast<Byte>(node.id())};  // overwritten
    }
    node.broadcastBytes(0, data);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[2], 30);
  });
}

TEST_P(CollectivesTest, AlltoallvRoutesEveryPair) {
  Machine m(GetParam());
  m.run([](Node& node) {
    const int p = node.nprocs();
    // Node s sends to node d a buffer of (s*31 + d) repeated s+d+1 times.
    std::vector<ByteBuffer> send(static_cast<size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<size_t>(d)].assign(
          static_cast<size_t>(node.id() + d + 1),
          static_cast<Byte>(node.id() * 31 + d));
    }
    const auto recv = node.alltoallv(send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int s = 0; s < p; ++s) {
      const auto& buf = recv[static_cast<size_t>(s)];
      ASSERT_EQ(buf.size(), static_cast<size_t>(s + node.id() + 1));
      for (Byte b : buf) {
        EXPECT_EQ(b, static_cast<Byte>(s * 31 + node.id()));
      }
    }
  });
}

TEST_P(CollectivesTest, AlltoallvWithEmptyBuffers) {
  Machine m(GetParam());
  m.run([](Node& node) {
    // Only node 0 sends, and only to the last node.
    std::vector<ByteBuffer> send(static_cast<size_t>(node.nprocs()));
    if (node.id() == 0) {
      send[static_cast<size_t>(node.nprocs() - 1)] = {42};
    }
    const auto recv = node.alltoallv(send);
    for (int s = 0; s < node.nprocs(); ++s) {
      const bool expectData =
          node.id() == node.nprocs() - 1 && s == 0;
      EXPECT_EQ(recv[static_cast<size_t>(s)].size(), expectData ? 1u : 0u);
    }
  });
}

TEST_P(CollectivesTest, Reductions) {
  Machine m(GetParam());
  m.run([](Node& node) {
    const int p = node.nprocs();
    EXPECT_DOUBLE_EQ(node.allreduceMax(static_cast<double>(node.id())),
                     static_cast<double>(p - 1));
    EXPECT_DOUBLE_EQ(node.allreduceSum(1.5), 1.5 * p);
    EXPECT_EQ(node.allreduceSumU64(2), static_cast<std::uint64_t>(2 * p));
  });
}

TEST_P(CollectivesTest, ExclusiveScanIsPrefixSum) {
  Machine m(GetParam());
  m.run([](Node& node) {
    // Node i contributes i+1; prefix of node i is sum of 1..i.
    const auto prefix = node.exclusiveScanU64(
        static_cast<std::uint64_t>(node.id() + 1));
    std::uint64_t expected = 0;
    for (int i = 0; i < node.id(); ++i) {
      expected += static_cast<std::uint64_t>(i + 1);
    }
    EXPECT_EQ(prefix, expected);
  });
}

TEST_P(CollectivesTest, BackToBackCollectivesDoNotInterfere) {
  Machine m(GetParam());
  m.run([](Node& node) {
    for (int round = 0; round < 20; ++round) {
      const auto all = node.allgatherU64(
          static_cast<std::uint64_t>(node.id() + round));
      for (int i = 0; i < node.nprocs(); ++i) {
        EXPECT_EQ(all[static_cast<size_t>(i)],
                  static_cast<std::uint64_t>(i + round));
      }
      node.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(CollectivesClock, BarrierSynchronizesVirtualClocks) {
  Machine m(4);
  m.run([](Node& node) {
    node.clock().advance(static_cast<double>(node.id()));  // skew clocks
    node.barrier();
    EXPECT_DOUBLE_EQ(node.clock().now(), 3.0);  // max of all
  });
}

TEST(CollectivesClock, CommModelChargesLatency) {
  CommModel comm;
  comm.latency = 1e-3;
  comm.perByte = 0.0;
  Machine m(4, comm);
  m.run([](Node& node) {
    node.barrier();
    // ceil(log2(4)) = 2 hops at 1 ms.
    EXPECT_NEAR(node.clock().now(), 2e-3, 1e-12);
  });
}

TEST(CollectivesClock, CommModelChargesBytes) {
  CommModel comm;
  comm.latency = 0.0;
  comm.perByte = 1e-6;
  Machine m(2, comm);
  m.run([](Node& node) {
    ByteBuffer mine(1000, 0);
    node.allgatherBytes(mine);
    // 2000 bytes moved at 1 us/byte.
    EXPECT_NEAR(node.clock().now(), 2e-3, 1e-9);
  });
}

TEST(CollectivesClock, P2pArrivalTimeAdvancesReceiver) {
  CommModel comm;
  comm.latency = 1e-3;
  comm.perByte = 1e-6;
  Machine m(2, comm);
  m.run([](Node& node) {
    if (node.id() == 0) {
      ByteBuffer data(500, 0);
      node.send(1, 0, data);
      // Sender pays latency only.
      EXPECT_NEAR(node.clock().now(), 1e-3, 1e-12);
    } else {
      node.recv(0, 0);
      // Receiver syncs to arrival: latency + 500 bytes.
      EXPECT_NEAR(node.clock().now(), 1e-3 + 500e-6, 1e-12);
    }
  });
}

}  // namespace
