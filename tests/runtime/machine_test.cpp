// Unit tests for the SPMD machine: node identity, p2p messaging, abort
// propagation, and reuse across runs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::rt;

TEST(Machine, RunsEveryNodeExactlyOnce) {
  Machine m(6);
  std::atomic<int> count{0};
  std::atomic<int> idSum{0};
  m.run([&](Node& node) {
    count.fetch_add(1);
    idSum.fetch_add(node.id());
    EXPECT_EQ(node.nprocs(), 6);
  });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(idSum.load(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(Machine, RequiresPositiveNodeCount) {
  EXPECT_THROW(Machine(0), UsageError);
  EXPECT_THROW(Machine(-3), UsageError);
}

TEST(Machine, ThisNodeBindsPerThread) {
  Machine m(4);
  m.run([&](Node& node) {
    EXPECT_EQ(&thisNode(), &node);
    EXPECT_TRUE(inNodeContext());
  });
  EXPECT_FALSE(inNodeContext());
  EXPECT_THROW(thisNode(), UsageError);
}

TEST(Machine, ReusableAcrossRuns) {
  Machine m(3);
  for (int iteration = 0; iteration < 5; ++iteration) {
    std::atomic<int> count{0};
    m.run([&](Node& node) {
      node.barrier();
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 3);
  }
}

TEST(Machine, SendRecvPointToPoint) {
  Machine m(2);
  m.run([](Node& node) {
    if (node.id() == 0) {
      const int v = 12345;
      node.sendValue(1, /*tag=*/7, v);
    } else {
      EXPECT_EQ(node.recvValue<int>(0, 7), 12345);
    }
  });
}

TEST(Machine, RecvMatchesByTag) {
  Machine m(2);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, /*tag=*/1, 111);
      node.sendValue(1, /*tag=*/2, 222);
    } else {
      // Receive out of send order, selected by tag.
      EXPECT_EQ(node.recvValue<int>(0, 2), 222);
      EXPECT_EQ(node.recvValue<int>(0, 1), 111);
    }
  });
}

TEST(Machine, RecvAnySourceAnyTag) {
  Machine m(4);
  m.run([](Node& node) {
    if (node.id() != 0) {
      node.sendValue(0, node.id(), node.id() * 10);
    } else {
      int sum = 0;
      for (int i = 1; i < 4; ++i) {
        Message msg = node.recv(kAnySource, kAnyTag);
        int v = 0;
        std::memcpy(&v, msg.payload.data(), sizeof(int));
        EXPECT_EQ(v, msg.src * 10);
        EXPECT_EQ(msg.tag, msg.src);
        sum += v;
      }
      EXPECT_EQ(sum, 60);
    }
  });
}

TEST(Machine, FifoPerSourceAndTag) {
  Machine m(2);
  m.run([](Node& node) {
    if (node.id() == 0) {
      for (int i = 0; i < 50; ++i) node.sendValue(1, 0, i);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(node.recvValue<int>(0, 0), i);
      }
    }
  });
}

TEST(Machine, ProbeSeesQueuedMessages) {
  Machine m(2);
  m.run([](Node& node) {
    if (node.id() == 0) {
      node.sendValue(1, 9, 1);
      node.barrier();
    } else {
      node.barrier();  // message definitely sent by now
      EXPECT_TRUE(node.probe(0, 9));
      EXPECT_FALSE(node.probe(0, 8));
      node.recvValue<int>(0, 9);
      EXPECT_FALSE(node.probe(0, 9));
    }
  });
}

TEST(Machine, SendToBadNodeThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([](Node& node) {
    if (node.id() == 0) node.sendValue(5, 0, 1);
    node.barrier();
  }),
               UsageError);
}

TEST(Machine, NodeExceptionPropagatesAndUnblocksPeers) {
  Machine m(4);
  EXPECT_THROW(m.run([](Node& node) {
    if (node.id() == 2) {
      throw IoError("injected failure");
    }
    // Peers block; the abort must wake them instead of deadlocking.
    node.barrier();
  }),
               IoError);
  EXPECT_TRUE(m.aborted());
}

TEST(Machine, ExceptionWhileBlockedInRecvUnblocks) {
  Machine m(2);
  EXPECT_THROW(m.run([](Node& node) {
    if (node.id() == 0) {
      throw UsageError("boom");
    }
    node.recv(0, 0);  // never satisfied; must be aborted
  }),
               UsageError);
}

TEST(Machine, RunAfterAbortRecovers) {
  Machine m(3);
  EXPECT_THROW(m.run([](Node&) { throw IoError("x"); }), IoError);
  std::atomic<int> ran{0};
  m.run([&](Node& node) {
    node.barrier();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 3);
  EXPECT_FALSE(m.aborted());
}

TEST(Machine, SingleNodeMachineWorks) {
  Machine m(1);
  m.run([](Node& node) {
    node.barrier();
    EXPECT_EQ(node.allreduceSum(5.0), 5.0);
    EXPECT_EQ(node.exclusiveScanU64(9), 0u);
    auto v = node.allgatherU64(3);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 3u);
  });
}

TEST(VirtualClock, TracksCumulativeSyncWait) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.waitedSeconds(), 0.0);
  c.advance(1.0);
  c.syncTo(0.5);  // earlier than now: no wait, no jump
  EXPECT_DOUBLE_EQ(c.now(), 1.0);
  EXPECT_DOUBLE_EQ(c.waitedSeconds(), 0.0);
  c.syncTo(3.0);  // absorbs 2.0s of skew
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  EXPECT_DOUBLE_EQ(c.waitedSeconds(), 2.0);
  c.advance(1.0);
  c.syncTo(4.5);  // another 0.5s
  EXPECT_DOUBLE_EQ(c.waitedSeconds(), 2.5);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_DOUBLE_EQ(c.waitedSeconds(), 0.0);
}

TEST(VirtualClock, BarrierSkewShowsUpAsWaitedSeconds) {
  Machine m(2);
  m.run([](Node& node) {
    // Node 1 is "slower": the barrier drags node 0 forward to node 1's
    // time, and the absorbed skew is visible on node 0's clock.
    node.clock().advance(node.id() == 1 ? 2.0 : 0.0);
    const double waitedBefore = node.clock().waitedSeconds();
    node.barrier();
    const double waited = node.clock().waitedSeconds() - waitedBefore;
    if (node.id() == 0) {
      EXPECT_GE(waited, 2.0);
    } else {
      EXPECT_DOUBLE_EQ(waited, 0.0);
    }
    EXPECT_GE(node.clock().now(), 2.0);
  });
}

}  // namespace
