// Targeted concurrency stress for the per-waiter mailbox wakeup (the
// thundering-herd fix): many blocked receivers with distinct (src, tag)
// patterns, concurrent pushers, wildcard waiters, and abort while waiting.
// Run under the TSan CI leg; the assertions here are about delivery
// completeness, the interesting failures are data races and lost wakeups
// (which present as a hung test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/runtime/mailbox.h"

namespace {

using namespace pcxx;

TEST(MailboxStress, DistinctTagWaitersEachGetTheirMessages) {
  rt::Mailbox box;
  constexpr int kTags = 8;
  constexpr int kPerTag = 200;
  std::atomic<std::uint64_t> received{0};
  std::vector<std::thread> receivers;
  for (int t = 0; t < kTags; ++t) {
    receivers.emplace_back([&box, &received, t] {
      for (int i = 0; i < kPerTag; ++i) {
        const rt::Message m = box.waitPop(/*src=*/0, /*tag=*/t);
        EXPECT_EQ(m.tag, t);
        EXPECT_EQ(m.payload.size(), static_cast<size_t>(t + 1));
        received.fetch_add(1);
      }
    });
  }
  // Two pushers interleave tags so most pushes match exactly one of the
  // eight sleeping waiters.
  std::vector<std::thread> pushers;
  for (int p = 0; p < 2; ++p) {
    pushers.emplace_back([&box, p] {
      for (int i = 0; i < kPerTag / 2; ++i) {
        for (int t = 0; t < kTags; ++t) {
          rt::Message m;
          m.src = 0;
          m.tag = t;
          m.payload.assign(static_cast<size_t>(t + 1),
                           static_cast<Byte>(p));
          box.push(std::move(m));
        }
      }
    });
  }
  for (auto& th : pushers) th.join();
  for (auto& th : receivers) th.join();
  EXPECT_EQ(received.load(), static_cast<std::uint64_t>(kTags * kPerTag));
  EXPECT_EQ(box.pendingCount(), 0u);
}

TEST(MailboxStress, WildcardWaiterDrainsEverySource) {
  rt::Mailbox box;
  constexpr int kSources = 6;
  constexpr int kPerSource = 100;
  std::atomic<std::uint64_t> received{0};
  std::thread receiver([&box, &received] {
    for (int i = 0; i < kSources * kPerSource; ++i) {
      (void)box.waitPop(rt::kAnySource, rt::kAnyTag);
      received.fetch_add(1);
    }
  });
  std::vector<std::thread> pushers;
  for (int s = 0; s < kSources; ++s) {
    pushers.emplace_back([&box, s] {
      for (int i = 0; i < kPerSource; ++i) {
        rt::Message m;
        m.src = s;
        m.tag = i;
        box.push(std::move(m));
      }
    });
  }
  for (auto& th : pushers) th.join();
  receiver.join();
  EXPECT_EQ(received.load(),
            static_cast<std::uint64_t>(kSources * kPerSource));
}

TEST(MailboxStress, MixedSpecificAndWildcardWaiters) {
  // A wildcard waiter competes with tag-specific waiters; every message
  // matches at least one of them and all messages are consumed. push()
  // signals ALL matching unsignaled waiters (not just the first), so a
  // waiter that loses the race re-registers and sleeps again instead of
  // hanging.
  rt::Mailbox box;
  constexpr int kMessages = 400;
  std::atomic<std::uint64_t> received{0};
  std::vector<std::thread> receivers;
  receivers.emplace_back([&box, &received] {
    for (int i = 0; i < kMessages / 2; ++i) {
      (void)box.waitPop(rt::kAnySource, rt::kAnyTag);
      received.fetch_add(1);
    }
  });
  receivers.emplace_back([&box, &received] {
    for (int i = 0; i < kMessages / 2; ++i) {
      const rt::Message m = box.waitPop(0, /*tag=*/7);
      EXPECT_EQ(m.tag, 7);
      received.fetch_add(1);
    }
  });
  std::thread pusher([&box] {
    // Tag 7 for everyone: both waiters match every message; between them
    // they must consume all of it.
    for (int i = 0; i < kMessages; ++i) {
      rt::Message m;
      m.src = 0;
      m.tag = 7;
      box.push(std::move(m));
    }
  });
  pusher.join();
  for (auto& th : receivers) th.join();
  EXPECT_EQ(received.load(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(box.pendingCount(), 0u);
}

TEST(MailboxStress, AbortWakesAllBlockedWaiters) {
  rt::Mailbox box;
  constexpr int kWaiters = 8;
  std::atomic<int> threw{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&box, &threw, t] {
      try {
        (void)box.waitPop(/*src=*/1, /*tag=*/t);
      } catch (const Error&) {
        threw.fetch_add(1);
      }
    });
  }
  // Give the waiters a moment to block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.abort();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(threw.load(), kWaiters);
}

TEST(MailboxStress, PushAfterSignalDoesNotLoseWakeups) {
  // Regression for the first-match-only wakeup design: two messages pushed
  // back-to-back while two matching waiters sleep — if the second push
  // skipped already-signaled waiter A instead of also signaling B, B would
  // hang even though its message is queued.
  for (int round = 0; round < 200; ++round) {
    rt::Mailbox box;
    std::atomic<int> got{0};
    std::thread a([&] {
      (void)box.waitPop(0, 3);
      got.fetch_add(1);
    });
    std::thread b([&] {
      (void)box.waitPop(0, 3);
      got.fetch_add(1);
    });
    rt::Message m1;
    m1.src = 0;
    m1.tag = 3;
    rt::Message m2 = m1;
    box.push(std::move(m1));
    box.push(std::move(m2));
    a.join();
    b.join();
    EXPECT_EQ(got.load(), 2);
  }
}

}  // namespace
