// Tests for replicated I/O on local data (paper §4.2): node-0 output,
// broadcast input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/runtime/rio.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::rt;

class RioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_rio_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(RioTest, WriteThenReadReplicated) {
  Machine m(4);
  const std::string file = path("data.bin");
  m.run([&](Node& node) {
    ByteBuffer out{1, 2, 3, 4, 5};
    rio::writeFileReplicated(node, file, out);
    // Every node gets identical contents back.
    const ByteBuffer in = rio::readFileReplicated(node, file);
    ASSERT_EQ(in.size(), 5u);
    EXPECT_EQ(in[4], 5);
  });
  // Exactly one copy was written (by node 0), not four appended copies.
  EXPECT_EQ(std::filesystem::file_size(file), 5u);
}

TEST_F(RioTest, ReadMissingFileThrowsOnAllNodes) {
  Machine m(3);
  std::atomic<int> throwers{0};
  EXPECT_THROW(m.run([&](Node& node) {
    try {
      rio::readFileReplicated(node, path("nonexistent"));
    } catch (const IoError&) {
      throwers.fetch_add(1);
      throw;
    }
  }),
               IoError);
  // All nodes observed the failure (collective error propagation), even
  // though only node 0 attempted the open.
  EXPECT_EQ(throwers.load(), 3);
}

TEST_F(RioTest, WriteToBadPathThrowsOnAllNodes) {
  Machine m(2);
  EXPECT_THROW(m.run([&](Node& node) {
    ByteBuffer data{1};
    rio::writeFileReplicated(node, path("no/such/dir/file"), data);
  }),
               IoError);
}

TEST_F(RioTest, PrintfEmitsOnce) {
  // Validate via a round-trip through a file-backed stdout capture is
  // heavyweight; instead check it is callable from all nodes without
  // deadlock and ordering is preserved across two calls.
  Machine m(4);
  m.run([](Node& node) {
    rio::printf(node, "%s", "");  // no-op output, still collective
    rio::printf(node, "%s", "");
  });
}

TEST_F(RioTest, ReadLineReplicatedBroadcastsStdin) {
  // Swap std::cin's buffer for a string; node 0 reads the line, everyone
  // receives it.
  std::istringstream fake("hello from stdin\nsecond line\n");
  std::streambuf* old = std::cin.rdbuf(fake.rdbuf());
  Machine m(3);
  std::atomic<int> matches{0};
  m.run([&](Node& node) {
    const std::string line1 = rio::readLineReplicated(node);
    if (line1 == "hello from stdin") matches.fetch_add(1);
    const std::string line2 = rio::readLineReplicated(node);
    if (line2 == "second line") matches.fetch_add(1);
  });
  std::cin.rdbuf(old);
  EXPECT_EQ(matches.load(), 6);
}

TEST_F(RioTest, ReadLineReplicatedAtEofReturnsEmpty) {
  std::istringstream fake("");
  std::streambuf* old = std::cin.rdbuf(fake.rdbuf());
  Machine m(2);
  m.run([&](Node& node) {
    EXPECT_TRUE(rio::readLineReplicated(node).empty());
  });
  std::cin.rdbuf(old);
  std::cin.clear();  // clear the EOF state for any later reader
}

TEST_F(RioTest, EmptyFileRoundTrip) {
  Machine m(2);
  const std::string file = path("empty.bin");
  m.run([&](Node& node) {
    rio::writeFileReplicated(node, file, {});
    EXPECT_TRUE(rio::readFileReplicated(node, file).empty());
  });
}

}  // namespace
