// Tests for the scatter collective.
#include <gtest/gtest.h>

#include "src/runtime/machine.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::rt;

class ScatterTest : public ::testing::TestWithParam<int> {};

TEST_P(ScatterTest, EachNodeGetsItsBuffer) {
  Machine m(GetParam());
  m.run([](Node& node) {
    std::vector<ByteBuffer> toEach;
    if (node.id() == 0) {
      toEach.resize(static_cast<size_t>(node.nprocs()));
      for (int i = 0; i < node.nprocs(); ++i) {
        toEach[static_cast<size_t>(i)].assign(
            static_cast<size_t>(i + 1), static_cast<Byte>(i * 3));
      }
    }
    const ByteBuffer mine = node.scatterBytes(0, toEach);
    ASSERT_EQ(mine.size(), static_cast<size_t>(node.id() + 1));
    for (Byte b : mine) {
      EXPECT_EQ(b, static_cast<Byte>(node.id() * 3));
    }
  });
}

TEST_P(ScatterTest, NonZeroRoot) {
  const int root = GetParam() - 1;
  Machine m(GetParam());
  m.run([root](Node& node) {
    std::vector<ByteBuffer> toEach;
    if (node.id() == root) {
      toEach.assign(static_cast<size_t>(node.nprocs()), ByteBuffer{});
      for (int i = 0; i < node.nprocs(); ++i) {
        toEach[static_cast<size_t>(i)] = {static_cast<Byte>(100 + i)};
      }
    }
    const ByteBuffer mine = node.scatterBytes(root, toEach);
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0], static_cast<Byte>(100 + node.id()));
  });
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ScatterTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Scatter, RootWithWrongBufferCountThrows) {
  Machine m(3);
  EXPECT_THROW(m.run([](Node& node) {
    std::vector<ByteBuffer> toEach(2);  // need 3
    node.scatterBytes(0, toEach);
  }),
               Error);
}

TEST(Scatter, ThenGatherRoundTrips) {
  Machine m(4);
  m.run([](Node& node) {
    std::vector<ByteBuffer> toEach;
    if (node.id() == 0) {
      toEach.assign(4, ByteBuffer{});
      for (int i = 0; i < 4; ++i) {
        toEach[static_cast<size_t>(i)] = {static_cast<Byte>(i),
                                          static_cast<Byte>(i * 2)};
      }
    }
    ByteBuffer mine = node.scatterBytes(0, toEach);
    const auto gathered = node.gatherBytes(0, mine);
    if (node.id() == 0) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(gathered[static_cast<size_t>(i)],
                  toEach[static_cast<size_t>(i)]);
      }
    }
  });
}

}  // namespace
