// Tests for the SCF harness metrics collection and the pcxx-metrics-v1
// report: the acceptance bar is that per-node phase decompositions sum
// (exactly, since "other" is the remainder) to each node's total, and the
// emitted JSON is machine-loadable.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/obs/obs.h"
#include "src/scf/harness.h"
#include "src/scf/metrics_json.h"
#include "tests/common/json_check.h"

namespace {

using namespace pcxx;
using scf::BenchConfig;
using scf::BenchTableResult;
using scf::MethodMetrics;

BenchConfig tinyConfig() {
  BenchConfig cfg;
  cfg.title = "tiny";
  cfg.platform = "paragon";
  cfg.nprocs = 2;
  cfg.segmentCounts = {8, 16};
  cfg.particlesPerSegment = 10;
  cfg.collectMetrics = true;
  return cfg;
}

#if PCXX_OBS_ENABLED

TEST(ScfMetrics, CollectsThreeMethodsPerCell) {
  const BenchTableResult result = scf::runBenchTable(tinyConfig());
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    ASSERT_EQ(cell.metrics.size(), 4u);
    EXPECT_EQ(cell.metrics[0].method, "Unbuffered I/O");
    EXPECT_EQ(cell.metrics[2].method, "pC++/streams");
    EXPECT_EQ(cell.metrics[3].method, "pC++/streams (async)");
    for (const MethodMetrics& m : cell.metrics) {
      EXPECT_GT(m.totalSeconds, 0.0);
      ASSERT_EQ(m.nodeSeconds.size(), 2u);
      ASSERT_EQ(m.snapshot.perNode.size(), 2u);
    }
  }
}

TEST(ScfMetrics, PhasesSumToPerNodeTotals) {
  const BenchTableResult result = scf::runBenchTable(tinyConfig());
  for (const auto& cell : result.cells) {
    for (const MethodMetrics& m : cell.metrics) {
      double nodeSum = 0.0;
      for (size_t i = 0; i < m.snapshot.perNode.size(); ++i) {
        const double total = m.nodeSeconds[i];
        const scf::PhaseBreakdown p =
            scf::phaseBreakdown(m.snapshot.perNode[i], total);
        EXPECT_NEAR(p.sum(), total, 1e-9 + 1e-9 * total)
            << m.method << " node " << i;
        // The disjoint phases must not overshoot the node's total.
        EXPECT_GE(p.other, -1e-9) << m.method << " node " << i;
        nodeSum += total;
      }
      // Each node's clock ends at most at the bench's reported total
      // (the max over nodes).
      EXPECT_LE(nodeSum, m.totalSeconds * 2 + 1e-9);
    }
  }
}

TEST(ScfMetrics, StreamsCellShowsTheExpectedActivity) {
  BenchConfig cfg = tinyConfig();
  cfg.sortedRead = true;  // force the redistribution path on input
  const BenchTableResult result = scf::runBenchTable(cfg);
  const MethodMetrics& streams = result.cells[0].metrics[2];
  const obs::NodeSnapshot& merged = streams.snapshot.merged;
  EXPECT_EQ(merged.counter(obs::Counter::DsWrites), 2u);
  EXPECT_EQ(merged.counter(obs::Counter::DsReads), 2u);
  EXPECT_GT(merged.counter(obs::Counter::DsBufferFillBytes), 0u);
  EXPECT_GT(merged.counter(obs::Counter::PfsWriteBytes), 0u);
  EXPECT_GT(merged.timer(obs::Timer::PfsWriteSeconds), 0.0);
  EXPECT_GT(merged.timer(obs::Timer::ScfOutputSeconds), 0.0);
  EXPECT_GT(merged.timer(obs::Timer::ScfInputSeconds), 0.0);
  // The unbuffered method never touches the d/stream layer.
  const obs::NodeSnapshot& unbuf = result.cells[0].metrics[0].snapshot.merged;
  EXPECT_EQ(unbuf.counter(obs::Counter::DsWrites), 0u);
  EXPECT_GT(unbuf.counter(obs::Counter::PfsWriteOps), 0u);
}

TEST(ScfMetrics, ReportJsonIsValidAndCarriesTheSchema) {
  const BenchTableResult result = scf::runBenchTable(tinyConfig());
  const std::string json = scf::metricsReportJson({result});
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"pcxx-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"insert_buffer_fill\""), std::string::npos);
  EXPECT_NE(json.find("\"redistribution\""), std::string::npos);
  EXPECT_NE(json.find("\"per_node\""), std::string::npos);
  // Straggler attribution rides along in every per_node entry.
  EXPECT_NE(json.find("\"sync_wait_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"straggler_ops\""), std::string::npos);
}

TEST(ScfMetrics, WaitCategoriesAreDisjointAndBounded) {
  // sync_wait (collective skew, via VirtualClock::syncTo) and the aio
  // stall/drain buckets (local pipeline waits, via stallTo) are charged to
  // separate clock accounts, so per node they can never sum past the
  // node's own elapsed time. A double-charge bug (e.g. a stall recorded as
  // sync wait AND as aio stall) shows up here as an overshoot.
  const BenchTableResult result = scf::runBenchTable(tinyConfig());
  for (const auto& cell : result.cells) {
    for (const MethodMetrics& m : cell.metrics) {
      std::uint64_t stragglerOps = 0;
      for (size_t i = 0; i < m.snapshot.perNode.size(); ++i) {
        const obs::NodeSnapshot& node = m.snapshot.perNode[i];
        const double waits =
            node.timer(obs::Timer::RtSyncWaitSeconds) +
            node.timer(obs::Timer::AioStallSeconds) +
            node.timer(obs::Timer::AioDrainSeconds);
        EXPECT_LE(waits, m.nodeSeconds[i] + 1e-9)
            << m.method << " node " << i
            << ": wait categories overlap (double-charged time)";
        stragglerOps += node.counter(obs::Counter::RtCollStragglerOps);
      }
      // Exactly one node is blamed per costed collective, so the blame
      // total can never exceed the collective count every node shares.
      const std::uint64_t collectives =
          m.snapshot.perNode[0].counter(obs::Counter::RtCollectives);
      if (collectives > 0) {
        EXPECT_GT(stragglerOps, 0u) << m.method;
        EXPECT_LE(stragglerOps, collectives) << m.method;
      }
    }
  }
}

#endif  // PCXX_OBS_ENABLED

// Runs in the obs-off configuration too: the bench works identically with
// collection disabled (or compiled out), it just reports no metrics.
TEST(ScfMetrics, DisabledCollectionLeavesCellsEmpty) {
  BenchConfig cfg = tinyConfig();
  cfg.collectMetrics = false;
  cfg.segmentCounts = {8};
  const BenchTableResult result = scf::runBenchTable(cfg);
  EXPECT_TRUE(result.cells[0].metrics.empty());
  EXPECT_GT(result.cells[0].streams, 0.0);
}

}  // namespace
