// Tests for the SCF benchmark module: segment geometry, workload
// determinism, the three I/O methods (all must round-trip the data), and
// the physics stepper's conservation behavior.
#include <gtest/gtest.h>

#include "src/scf/harness.h"
#include "src/scf/io_methods.h"
#include "src/scf/physics.h"
#include "src/scf/segment.h"
#include "src/scf/workload.h"
#include "tests/common/test_helpers.h"

namespace {

using namespace pcxx;
using namespace pcxx::scf;

TEST(Segment, PayloadMatchesPaperGeometry) {
  Segment seg;
  seg.allocate(100);
  // 7 double fields + the int count: 5604 bytes, the paper's ~5.6 KB.
  EXPECT_EQ(seg.payloadBytes(), 4u + 7u * 800u);
  // 1000 segments ~ the paper's "5.6MB" column.
  EXPECT_NEAR(1000.0 * static_cast<double>(seg.payloadBytes()), 5.6e6,
              0.01e6);
}

TEST(Segment, AllocateReleasesPrevious) {
  Segment seg;
  seg.allocate(10);
  seg.x[9] = 1.0;
  seg.allocate(5);
  EXPECT_EQ(seg.numberOfParticles, 5);
  seg.release();
  EXPECT_EQ(seg.x, nullptr);
  EXPECT_EQ(seg.numberOfParticles, 0);
}

TEST(Workload, DeterministicFillVerifies) {
  rt::Machine m(3);
  m.run([](rt::Node&) {
    coll::Processors P;
    coll::Distribution d(12, &P, coll::DistKind::Cyclic);
    coll::Collection<Segment> c(&d);
    fillDeterministic(c, 8);
    EXPECT_EQ(verifyDeterministic(c, 8), 0);
    // Perturb one value: exactly one mismatch.
    if (c.localCount() > 0) {
      c.local(0).mass[0] += 1.0;
      EXPECT_EQ(verifyDeterministic(c, 8), 1);
    }
  });
}

TEST(Workload, PlummerIsDeterministicPerGlobalIndex) {
  // The same global segment must get identical particles regardless of the
  // node count generating it (seeded by global index).
  pfs::Pfs fs = test::memFs();
  double probe4 = 0.0, probe2 = 0.0;
  {
    rt::Machine m(4);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(8, &P, coll::DistKind::Block);
      coll::Collection<Segment> c(&d);
      fillPlummer(c, 16, 42);
      if (c.owns(5)) probe4 = c.at(5).x[3];
    });
  }
  {
    rt::Machine m(2);
    m.run([&](rt::Node&) {
      coll::Processors P;
      coll::Distribution d(8, &P, coll::DistKind::Cyclic);
      coll::Collection<Segment> c(&d);
      fillPlummer(c, 16, 42);
      if (c.owns(5)) probe2 = c.at(5).x[3];
    });
  }
  EXPECT_DOUBLE_EQ(probe4, probe2);
}

class IoMethodTest : public ::testing::TestWithParam<int> {};

TEST_P(IoMethodTest, OutputInputRoundTripsExactly) {
  std::unique_ptr<IoMethod> method;
  switch (GetParam()) {
    case 0: method = makeUnbufferedIo(); break;
    case 1: method = makeManualBufferingIo(); break;
    case 2: method = makeStreamsIo(false); break;
    default: method = makeStreamsIo(true); break;
  }
  pfs::Pfs fs = test::memFs();
  rt::Machine m(4);
  std::atomic<std::int64_t> bad{0};
  m.run([&](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(25, &P, coll::DistKind::Block);
    coll::Collection<Segment> out(&d);
    fillDeterministic(out, 12);
    method->output(node, fs, out, "io_rt");
    coll::Collection<Segment> in(&d);
    method->input(node, fs, in, "io_rt", 12);
    bad.fetch_add(verifyDeterministic(in, 12));
  });
  EXPECT_EQ(bad.load(), 0) << method->name();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, IoMethodTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(Harness, TableConfigsMatchPaperShapes) {
  EXPECT_EQ(table1Paragon4().nprocs, 4);
  EXPECT_EQ(table1Paragon4().segmentCounts,
            (std::vector<std::int64_t>{256, 512, 1000, 2000}));
  EXPECT_EQ(table2Paragon8().nprocs, 8);
  EXPECT_EQ(table3SgiUni().nprocs, 1);
  EXPECT_EQ(table3SgiUni().segmentCounts,
            (std::vector<std::int64_t>{1000, 2000, 20000}));
  EXPECT_EQ(table4Sgi8().segmentCounts,
            (std::vector<std::int64_t>{1000, 2000, 8000}));
  EXPECT_EQ(paperValues(1).manual.size(), 4u);
  EXPECT_EQ(paperValues(3).streams.size(), 3u);
  EXPECT_THROW(paperValues(5), UsageError);
}

TEST(Harness, SmallSimulatedTableReproducesOrdering) {
  // A reduced Paragon table: buffered must beat unbuffered, streams must be
  // within a modest factor of manual, and the streams/manual ratio must not
  // degrade as size grows (the paper's key trend).
  BenchConfig cfg;
  cfg.title = "mini";
  cfg.platform = "paragon";
  cfg.nprocs = 4;
  cfg.segmentCounts = {64, 256};
  cfg.particlesPerSegment = 50;
  const auto result = runBenchTable(cfg);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& cell : result.cells) {
    EXPECT_GT(cell.unbuffered, cell.manual);
    EXPECT_GT(cell.unbuffered, cell.streams);
    EXPECT_GT(cell.streams, cell.manual);  // bookkeeping costs something
    EXPECT_GT(cell.pctOfManual(), 50.0);
  }
  EXPECT_GE(result.cells[1].pctOfManual(), result.cells[0].pctOfManual());
  // The rendered table contains the paper's row labels.
  const std::string rendered = result.toTable().render();
  EXPECT_NE(rendered.find("Unbuffered I/O"), std::string::npos);
  EXPECT_NE(rendered.find("Manual Buffering"), std::string::npos);
  EXPECT_NE(rendered.find("pC++/streams"), std::string::npos);
  EXPECT_NE(rendered.find("% of Manual Buf."), std::string::npos);
}

TEST(Harness, RealTimeModeRuns) {
  BenchConfig cfg;
  cfg.title = "real";
  cfg.platform = "none";
  cfg.nprocs = 2;
  cfg.segmentCounts = {16};
  cfg.particlesPerSegment = 10;
  const auto result = runBenchTable(cfg);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_GT(result.cells[0].streams, 0.0);  // wall time measured
}

TEST(Physics, MomentumConservedByLeapfrog) {
  rt::Machine m(2);
  m.run([](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(4, &P, coll::DistKind::Block);
    coll::Collection<Segment> bodies(&d);
    fillPlummer(bodies, 8, 11);

    auto totalMomentum = [&](coll::Collection<Segment>& c) {
      double px = 0;
      c.forEachLocal([&](Segment& seg, std::int64_t) {
        for (int k = 0; k < seg.numberOfParticles; ++k) {
          px += seg.mass[k] * seg.vx[k];
        }
      });
      return node.allreduceSum(px);
    };

    const double before = totalMomentum(bodies);
    NBodyStepper stepper(StepperConfig{});
    for (int i = 0; i < 5; ++i) stepper.step(node, bodies);
    const double after = totalMomentum(bodies);
    EXPECT_NEAR(after, before, 1e-9);
  });
}

TEST(Physics, EnergyApproximatelyConserved) {
  rt::Machine m(2);
  m.run([](rt::Node& node) {
    coll::Processors P;
    coll::Distribution d(2, &P, coll::DistKind::Block);
    coll::Collection<Segment> bodies(&d);
    fillPlummer(bodies, 12, 5);
    NBodyStepper stepper(StepperConfig{1e-4, 0.1, 1.0});
    const double e0 = stepper.totalEnergy(node, bodies);
    for (int i = 0; i < 10; ++i) stepper.step(node, bodies);
    const double e1 = stepper.totalEnergy(node, bodies);
    EXPECT_NEAR(e1, e0, std::abs(e0) * 0.01 + 1e-6);
  });
}

TEST(Physics, IndependentOfNodeCount) {
  // The direct-sum force on a given particle must not depend on how the
  // segments are distributed.
  auto runSim = [](int nprocs) {
    double probe = 0.0;
    rt::Machine m(nprocs);
    m.run([&](rt::Node& node) {
      coll::Processors P;
      coll::Distribution d(4, &P, coll::DistKind::Block);
      coll::Collection<Segment> bodies(&d);
      fillPlummer(bodies, 6, 3);
      NBodyStepper stepper(StepperConfig{});
      for (int i = 0; i < 3; ++i) stepper.step(node, bodies);
      double local = 0.0;
      if (bodies.owns(2)) local = bodies.at(2).x[1];
      const double v = node.allreduceSum(local);
      if (node.id() == 0) probe = v;
    });
    return probe;
  };
  EXPECT_NEAR(runSim(1), runSim(4), 1e-12);
}

}  // namespace
