// Calibration regression tests: lock in the SHAPE properties of the
// paper's tables so a model change that breaks the reproduction fails CI,
// not just the eyeball check of bench output.
#include <gtest/gtest.h>

#include "src/scf/harness.h"

namespace {

using namespace pcxx::scf;

TEST(TableShape, ParagonUnbufferedCliffBetween512And1000) {
  BenchConfig cfg = table1Paragon4();
  cfg.segmentCounts = {512, 1000};
  const auto result = runBenchTable(cfg);
  ASSERT_EQ(result.cells.size(), 2u);
  // The paper jumps 14.73 -> 283.00 (~19x). Require at least 8x.
  EXPECT_GT(result.cells[1].unbuffered / result.cells[0].unbuffered, 8.0);
  // No such cliff for the buffered methods at these sizes (< 3x).
  EXPECT_LT(result.cells[1].manual / result.cells[0].manual, 3.0);
  EXPECT_LT(result.cells[1].streams / result.cells[0].streams, 3.0);
}

TEST(TableShape, ParagonManualKneeAt11MBOnlyOn4Nodes) {
  BenchConfig four = table1Paragon4();
  four.segmentCounts = {1000, 2000};
  const auto r4 = runBenchTable(four);
  // Paper: 5.42 -> 54.17 (10x). Require at least 5x.
  EXPECT_GT(r4.cells[1].manual / r4.cells[0].manual, 5.0);

  BenchConfig eight = table2Paragon8();
  eight.segmentCounts = {1000, 2000};
  const auto r8 = runBenchTable(eight);
  // Paper: 5.72 -> 9.69 (1.7x). Require under 3x — the knee must vanish.
  EXPECT_LT(r8.cells[1].manual / r8.cells[0].manual, 3.0);
}

TEST(TableShape, StreamsOverheadShrinksWithSize) {
  for (const BenchConfig& base :
       {table1Paragon4(), table3SgiUni(), table4Sgi8()}) {
    BenchConfig cfg = base;
    // First and last size of each table.
    cfg.segmentCounts = {base.segmentCounts.front(),
                         base.segmentCounts.back()};
    const auto result = runBenchTable(cfg);
    EXPECT_GT(result.cells[1].pctOfManual() + 1.0,
              result.cells[0].pctOfManual())
        << base.title;
    // And everywhere streams stays within 2x of manual.
    for (const auto& cell : result.cells) {
      EXPECT_LT(cell.streams, cell.manual * 2.0) << base.title;
    }
  }
}

TEST(TableShape, BufferedAlwaysBeatsUnbuffered) {
  for (const BenchConfig& base : {table1Paragon4(), table4Sgi8()}) {
    BenchConfig cfg = base;
    cfg.segmentCounts = {base.segmentCounts.front(),
                         base.segmentCounts.back()};
    const auto result = runBenchTable(cfg);
    for (const auto& cell : result.cells) {
      EXPECT_GT(cell.unbuffered, cell.manual) << base.title;
      EXPECT_GT(cell.unbuffered, cell.streams) << base.title;
    }
  }
}

TEST(TableShape, SgiUnbufferedHasNoCliff) {
  BenchConfig cfg = table3SgiUni();
  cfg.segmentCounts = {1000, 2000};
  const auto result = runBenchTable(cfg);
  // Doubling the size roughly doubles the time (paper 1.68 -> 3.42).
  const double ratio = result.cells[1].unbuffered /
                       result.cells[0].unbuffered;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(TableShape, EightWaySgiFasterThanUniprocessor) {
  BenchConfig uni = table3SgiUni();
  uni.segmentCounts = {2000};
  BenchConfig smp = table4Sgi8();
  smp.segmentCounts = {2000};
  const auto rUni = runBenchTable(uni);
  const auto rSmp = runBenchTable(smp);
  EXPECT_LT(rSmp.cells[0].manual, rUni.cells[0].manual);
  EXPECT_LT(rSmp.cells[0].streams, rUni.cells[0].streams);
}

}  // namespace
