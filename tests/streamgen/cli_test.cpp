// CLI tests for the streamgen tool, plus parser robustness against this
// repository's own headers (the tool must skip what its subset cannot
// stream, never crash).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/streamgen/parser.h"

#ifndef PCXX_STREAMGEN_PATH
#error "PCXX_STREAMGEN_PATH must be defined by the build"
#endif
#ifndef PCXX_REPO_ROOT
#error "PCXX_REPO_ROOT must be defined by the build"
#endif

namespace {

class StreamgenCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcxx_sgcli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::pair<int, std::string> runTool(const std::string& args) {
    const std::string outPath = (dir_ / "tool.out").string();
    const std::string cmd = std::string(PCXX_STREAMGEN_PATH) + " " + args +
                            " > " + outPath + " 2>&1";
    const int rc = std::system(cmd.c_str());
    std::ifstream in(outPath);
    std::ostringstream ss;
    ss << in.rdbuf();
    return {WEXITSTATUS(rc), ss.str()};
  }

  std::string writeHeader(const std::string& name,
                          const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream(path) << content;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(StreamgenCli, GeneratesToFile) {
  const std::string hdr = writeHeader("t.h", R"(
    struct Point { double x, y; };
  )");
  const std::string out = (dir_ / "t_streams.h").string();
  auto [rc, log] = runTool(hdr + " -o " + out);
  EXPECT_EQ(rc, 0) << log;
  std::ifstream gen(out);
  std::ostringstream ss;
  ss << gen.rdbuf();
  EXPECT_NE(ss.str().find("declareStreamInserter(Point& v)"),
            std::string::npos);
  EXPECT_NE(ss.str().find("s << v.x;"), std::string::npos);
}

TEST_F(StreamgenCli, ListModePrintsTypes) {
  const std::string hdr = writeHeader("l.h", R"(
    struct A { int n; double* data; // pcxx:size(n)
    };
    struct B { float f; };
  )");
  auto [rc, out] = runTool("--list " + hdr);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("A (2 fields)"), std::string::npos) << out;
  EXPECT_NE(out.find("B (1 fields)"), std::string::npos) << out;
}

TEST_F(StreamgenCli, NoStructsIsAnError) {
  const std::string hdr = writeHeader("empty.h", "// nothing here\n");
  auto [rc, out] = runTool(hdr);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("no struct"), std::string::npos) << out;
}

TEST_F(StreamgenCli, MissingInputFileFails) {
  auto [rc, out] = runTool((dir_ / "nope.h").string());
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("streamgen:"), std::string::npos);
}

TEST_F(StreamgenCli, UnannotatedPointerWarnsWithPosition) {
  const std::string hdr = writeHeader("w.h",
                                      "struct S {\n"
                                      "  int n;\n"
                                      "  char* name;\n"
                                      "};\n");
  const std::string out = (dir_ / "w_streams.h").string();
  auto [rc, log] = runTool(hdr + " -o " + out);
  EXPECT_EQ(rc, 0) << log;  // a warning, not an error
  EXPECT_NE(log.find(hdr + ":3:9: warning:"), std::string::npos) << log;
  EXPECT_NE(log.find("[-Wstreamgen-pointer]"), std::string::npos) << log;
}

TEST_F(StreamgenCli, ParseErrorsLeadWithThePosition) {
  const std::string hdr =
      writeHeader("bad.h", "struct S { int a; };\n}\n");
  auto [rc, log] = runTool(hdr);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(log.find(hdr + ":2:1: error:"), std::string::npos) << log;
}

// ---------------------------------------------------------------------------
// Robustness: parse this repository's real headers. The subset parser must
// accept or skip everything in them without throwing or crashing.
// ---------------------------------------------------------------------------

class SelfParse : public ::testing::TestWithParam<const char*> {};

TEST_P(SelfParse, RepositoryHeaderParsesWithoutThrowing) {
  const std::string path = std::string(PCXX_REPO_ROOT) + "/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NO_THROW({
    const auto unit = pcxx::sg::parseSource(ss.str());
    (void)unit;
  }) << path;
}

INSTANTIATE_TEST_SUITE_P(
    RepoHeaders, SelfParse,
    ::testing::Values("src/scf/segment.h", "src/collection/distribution.h",
                      "src/collection/align.h", "src/pfs/fault.h",
                      "src/pfs/perf_model.h", "src/dstream/record.h",
                      "src/runtime/message.h", "src/util/rng.h",
                      "examples/streamgen_types.h"));

TEST(SelfParseContent, SegmentHeaderYieldsTheSegmentStruct) {
  const std::string path =
      std::string(PCXX_REPO_ROOT) + "/src/scf/segment.h";
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto unit = pcxx::sg::parseSource(ss.str());
  bool found = false;
  for (const auto& def : unit.structs) {
    if (def.name == "Segment") {
      found = true;
      // 8 data members: numberOfParticles + seven arrays.
      EXPECT_EQ(def.fields.size(), 8u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
