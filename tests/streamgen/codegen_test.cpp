// Tests for the stream-gen code generator: the emitted source must contain
// the right streaming statements (golden substring checks) and, for the
// paper's ParticleList, match the hand-written form.
#include <gtest/gtest.h>

#include "src/streamgen/codegen.h"
#include "src/streamgen/parser.h"

namespace {

using namespace pcxx;
using namespace pcxx::sg;

std::string genFor(const std::string& source) {
  const ParsedUnit u = parseSource(source);
  CodegenOptions opts;
  opts.guardMacro = "TEST_GUARD_H";
  return generate(u, opts);
}

TEST(Codegen, ParticleListMatchesPaperStructure) {
  const std::string code = genFor(R"(
    class ParticleList {
     public:
      int numberOfParticles;
      double* mass;        // pcxx:size(numberOfParticles)
      Position* position;  // pcxx:size(numberOfParticles)
    };
  )");
  EXPECT_NE(code.find("declareStreamInserter(ParticleList& v) {"),
            std::string::npos);
  EXPECT_NE(code.find("s << v.numberOfParticles;"), std::string::npos);
  EXPECT_NE(code.find("s << pcxx::ds::array(v.mass, v.numberOfParticles);"),
            std::string::npos);
  EXPECT_NE(
      code.find("s << pcxx::ds::array(v.position, v.numberOfParticles);"),
      std::string::npos);
  EXPECT_NE(code.find("declareStreamExtractor(ParticleList& v) {"),
            std::string::npos);
  EXPECT_NE(code.find("s >> pcxx::ds::array(v.mass, v.numberOfParticles);"),
            std::string::npos);
}

TEST(Codegen, UnknownPointerEmitsTodoComment) {
  // Paper §4.2: "stream-gen generates comment statements allowing the
  // programmer to specify exactly how the pointers should be handled."
  const std::string code = genFor("struct S { char* name; };");
  EXPECT_NE(code.find("TODO(stream-gen): pointer field 'name'"),
            std::string::npos);
  EXPECT_NE(code.find("pcxx:size"), std::string::npos);
}

TEST(Codegen, RecursivePointerEmitsPresenceProtocol) {
  const std::string code = genFor("struct Node { int v; Node* next; };");
  EXPECT_NE(code.find("s << static_cast<std::uint8_t>(v.next != nullptr);"),
            std::string::npos);
  EXPECT_NE(code.find("v.next = new Node();"), std::string::npos);
}

TEST(Codegen, FixedArrayEmitsLoops) {
  const std::string code = genFor("struct S { int grid[2][3]; };");
  EXPECT_NE(code.find("for (std::size_t i = 0; i < 2; ++i)"),
            std::string::npos);
  EXPECT_NE(code.find("for (std::size_t j = 0; j < 3; ++j)"),
            std::string::npos);
  EXPECT_NE(code.find("s << v.grid[i][j];"), std::string::npos);
}

TEST(Codegen, SkippedFieldsCommentedOut) {
  const std::string code = genFor("struct S { void* x; // pcxx:skip\n };");
  EXPECT_NE(code.find("// field 'x' skipped"), std::string::npos);
  EXPECT_EQ(code.find("s << v.x"), std::string::npos);
}

TEST(Codegen, NamespacesReopenedForAdl) {
  const std::string code =
      genFor("namespace app { struct S { int a; }; }");
  EXPECT_NE(code.find("namespace app {"), std::string::npos);
  EXPECT_NE(code.find("}  // namespace app"), std::string::npos);
}

TEST(Codegen, GuardMacroApplied) {
  const std::string code = genFor("struct S { int a; };");
  EXPECT_NE(code.find("#ifndef TEST_GUARD_H"), std::string::npos);
  EXPECT_NE(code.find("#define TEST_GUARD_H"), std::string::npos);
  EXPECT_NE(code.find("#endif  // TEST_GUARD_H"), std::string::npos);
}

TEST(Codegen, IncludeHeaderEmittedWhenSet) {
  const ParsedUnit u = parseSource("struct S { int a; };");
  CodegenOptions opts;
  opts.includeHeader = "my/defs.h";
  const std::string code = generate(u, opts);
  EXPECT_NE(code.find("#include \"my/defs.h\""), std::string::npos);
}

TEST(Codegen, VectorAndStringStreamDirectly) {
  const std::string code = genFor(
      "struct S { std::vector<double> v; std::string n; };");
  EXPECT_NE(code.find("s << v.v;"), std::string::npos);
  EXPECT_NE(code.find("s << v.n;"), std::string::npos);
  EXPECT_NE(code.find("s >> v.v;"), std::string::npos);
}

TEST(Codegen, FixedBytesConstantSumsScalarAndArrayFields) {
  const std::string code =
      genFor("struct S { int a; double pos[2][3]; };");
  EXPECT_NE(code.find("inline constexpr std::uint64_t kStreamFixedBytes_S"),
            std::string::npos);
  EXPECT_NE(code.find("sizeof(int) + sizeof(double) * 2 * 3;"),
            std::string::npos);
  EXPECT_NE(code.find("IStream::project()"), std::string::npos);
}

TEST(Codegen, FixedBytesConstantZeroForDynamicTypes) {
  // Any data-dependent field (sized pointer, vector, string, recursion)
  // makes the per-element size variable — the constant must be 0.
  const std::string code = genFor(R"(
    struct ParticleList {
      int numberOfParticles;
      double* mass;  // pcxx:size(numberOfParticles)
    };
  )");
  EXPECT_NE(code.find("kStreamFixedBytes_ParticleList =\n    0;"),
            std::string::npos);
}

TEST(Codegen, FixedBytesConstantIgnoresSkippedFields) {
  const std::string code =
      genFor("struct S {\n int a;\n void* x; // pcxx:skip\n };");
  EXPECT_NE(code.find("kStreamFixedBytes_S =\n    sizeof(int);"),
            std::string::npos);
}

TEST(Codegen, GeneratedCodeForSegmentMatchesHandwritten) {
  // The hand-written inserter in src/scf/segment.h is what the tool should
  // produce for the SCF Segment type.
  const std::string code = genFor(R"(
    struct Segment {
      int numberOfParticles;
      double* x;    // pcxx:size(numberOfParticles)
      double* y;    // pcxx:size(numberOfParticles)
      double* z;    // pcxx:size(numberOfParticles)
      double* vx;   // pcxx:size(numberOfParticles)
      double* vy;   // pcxx:size(numberOfParticles)
      double* vz;   // pcxx:size(numberOfParticles)
      double* mass; // pcxx:size(numberOfParticles)
    };
  )");
  for (const char* field : {"x", "y", "z", "vx", "vy", "vz", "mass"}) {
    EXPECT_NE(code.find("s << pcxx::ds::array(v." + std::string(field) +
                        ", v.numberOfParticles);"),
              std::string::npos)
        << field;
  }
}

}  // namespace
