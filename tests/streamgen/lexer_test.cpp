// Unit tests for the stream-gen lexer.
#include <gtest/gtest.h>

#include "src/streamgen/lexer.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::sg;

TEST(Lexer, TokenizesIdentifiersSymbolsNumbers) {
  const auto ts = lex("struct Foo { int x = 42; };");
  ASSERT_GE(ts.tokens.size(), 10u);
  EXPECT_TRUE(ts.tokens[0].isIdent("struct"));
  EXPECT_TRUE(ts.tokens[1].isIdent("Foo"));
  EXPECT_TRUE(ts.tokens[2].isSymbol("{"));
  EXPECT_TRUE(ts.tokens[3].isIdent("int"));
  EXPECT_TRUE(ts.tokens[5].isSymbol("="));
  EXPECT_TRUE(ts.tokens[6].is(TokKind::Number));
  EXPECT_EQ(ts.tokens[6].text, "42");
  EXPECT_TRUE(ts.tokens.back().is(TokKind::EndOfFile));
}

TEST(Lexer, ScopeOperatorIsOneToken) {
  const auto ts = lex("std::vector<double> v;");
  EXPECT_TRUE(ts.tokens[0].isIdent("std"));
  EXPECT_TRUE(ts.tokens[1].isSymbol("::"));
  EXPECT_TRUE(ts.tokens[2].isIdent("vector"));
  EXPECT_TRUE(ts.tokens[3].isSymbol("<"));
}

TEST(Lexer, TracksLineNumbers) {
  const auto ts = lex("int a;\nint b;\n\nint c;");
  // Find the 'c' identifier.
  for (const auto& t : ts.tokens) {
    if (t.isIdent("c")) {
      EXPECT_EQ(t.line, 4);
      return;
    }
  }
  FAIL() << "token 'c' not found";
}

TEST(Lexer, StripsCommentsButKeepsAnnotations) {
  const auto ts = lex(
      "int a; // plain comment\n"
      "double* m; // pcxx:size(a)\n"
      "/* block\n comment */ int b; // pcxx:skip\n");
  ASSERT_EQ(ts.annotations.size(), 2u);
  EXPECT_EQ(ts.annotations[0].line, 2);
  EXPECT_EQ(ts.annotations[0].body, "size(a)");
  EXPECT_EQ(ts.annotations[1].line, 4);
  EXPECT_EQ(ts.annotations[1].body, "skip");
  // No comment text leaked into tokens.
  for (const auto& t : ts.tokens) {
    EXPECT_NE(t.text, "plain");
    EXPECT_NE(t.text, "block");
  }
}

TEST(Lexer, SkipsPreprocessorLines) {
  const auto ts = lex("#include <string>\n#define X \\\n 1\nint a;");
  EXPECT_TRUE(ts.tokens[0].isIdent("int"));
}

TEST(Lexer, StringAndCharLiterals) {
  const auto ts = lex(R"(const char* s = "hi {;} \" x"; char c = '{';)");
  bool foundString = false;
  for (const auto& t : ts.tokens) {
    if (t.is(TokKind::String)) {
      foundString = true;
      // Braces inside literals must not be symbol tokens.
    }
  }
  EXPECT_TRUE(foundString);
  int braces = 0;
  for (const auto& t : ts.tokens) {
    if (t.isSymbol("{") || t.isSymbol("}")) ++braces;
  }
  EXPECT_EQ(braces, 0);
}

TEST(Lexer, UnterminatedConstructsThrow) {
  EXPECT_THROW(lex("/* never closed"), FormatError);
  EXPECT_THROW(lex("char* s = \"never closed"), FormatError);
}

TEST(Lexer, BlockCommentsCountLines) {
  const auto ts = lex("/* a\nb\nc */ int x; // pcxx:skip");
  ASSERT_EQ(ts.annotations.size(), 1u);
  EXPECT_EQ(ts.annotations[0].line, 3);
}

}  // namespace
