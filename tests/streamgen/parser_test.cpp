// Unit tests for the stream-gen parser: field recognition, annotation
// attachment, classification, and robust skipping of non-field constructs.
#include <gtest/gtest.h>

#include "src/streamgen/parser.h"
#include "src/util/error.h"

namespace {

using namespace pcxx;
using namespace pcxx::sg;

const StructDef& only(const ParsedUnit& u) {
  EXPECT_EQ(u.structs.size(), 1u);
  return u.structs.front();
}

const Field& fieldNamed(const StructDef& def, const std::string& name) {
  for (const Field& f : def.fields) {
    if (f.name == name) return f;
  }
  ADD_FAILURE() << "no field named " << name;
  static Field dummy;
  return dummy;
}

TEST(Parser, ScalarFields) {
  const auto u = parseSource("struct S { int a; double b; unsigned long c; };");
  const auto& s = only(u);
  ASSERT_EQ(s.fields.size(), 3u);
  EXPECT_EQ(s.fields[0].typeName, "int");
  EXPECT_EQ(s.fields[1].typeName, "double");
  EXPECT_EQ(s.fields[2].typeName, "unsigned long");
  for (const auto& f : s.fields) {
    EXPECT_EQ(f.category, FieldCategory::Scalar);
  }
}

TEST(Parser, PaperParticleList) {
  const auto u = parseSource(R"(
    class ParticleList {
     public:
      int numberOfParticles;
      double* mass;        // pcxx:size(numberOfParticles)
      Position* position;  // pcxx:size(numberOfParticles)
      void updateParticles();
    };
  )");
  const auto& s = only(u);
  EXPECT_EQ(s.name, "ParticleList");
  ASSERT_EQ(s.fields.size(), 3u);
  EXPECT_EQ(fieldNamed(s, "mass").category, FieldCategory::SizedPointer);
  EXPECT_EQ(fieldNamed(s, "mass").sizeExpr, "numberOfParticles");
  EXPECT_EQ(fieldNamed(s, "position").category, FieldCategory::SizedPointer);
}

TEST(Parser, FixedArraysSingleAndMulti) {
  const auto u = parseSource("struct S { double w[3]; int grid[2][4]; };");
  const auto& s = only(u);
  EXPECT_EQ(fieldNamed(s, "w").category, FieldCategory::FixedArray);
  ASSERT_EQ(fieldNamed(s, "w").arrayDims.size(), 1u);
  EXPECT_EQ(fieldNamed(s, "w").arrayDims[0], "3");
  ASSERT_EQ(fieldNamed(s, "grid").arrayDims.size(), 2u);
  EXPECT_EQ(fieldNamed(s, "grid").arrayDims[1], "4");
}

TEST(Parser, VectorsAndStrings) {
  const auto u = parseSource(
      "#include <vector>\nstruct S { std::vector<int> v; std::string name; "
      "};");
  const auto& s = only(u);
  EXPECT_EQ(fieldNamed(s, "v").category, FieldCategory::Vector);
  EXPECT_EQ(fieldNamed(s, "name").category, FieldCategory::String);
}

TEST(Parser, RecursivePointerDetected) {
  const auto u = parseSource("struct Node { int v; Node* next; };");
  EXPECT_EQ(fieldNamed(only(u), "next").category,
            FieldCategory::RecursivePointer);
}

TEST(Parser, UnknownPointerFlagged) {
  const auto u = parseSource("struct S { char* name; void** handles; };");
  EXPECT_EQ(fieldNamed(only(u), "name").category,
            FieldCategory::UnknownPointer);
  EXPECT_EQ(fieldNamed(only(u), "handles").category,
            FieldCategory::UnknownPointer);
}

TEST(Parser, SkipAnnotationAndConstSkipped) {
  const auto u = parseSource(
      "struct S { void* scratch; // pcxx:skip\n  const int k = 3; };");
  EXPECT_EQ(fieldNamed(only(u), "scratch").category, FieldCategory::Skipped);
  EXPECT_EQ(fieldNamed(only(u), "k").category, FieldCategory::Skipped);
}

TEST(Parser, AnnotationOnLineAbove) {
  const auto u = parseSource(
      "struct S {\n  // pcxx:size(n)\n  double* data;\n  int n;\n};");
  EXPECT_EQ(fieldNamed(only(u), "data").category, FieldCategory::SizedPointer);
  EXPECT_EQ(fieldNamed(only(u), "data").sizeExpr, "n");
}

TEST(Parser, TrailingAnnotationDoesNotLeakToNextField) {
  const auto u = parseSource(
      "struct S {\n  void* a; // pcxx:skip\n  char* b;\n};");
  EXPECT_EQ(fieldNamed(only(u), "a").category, FieldCategory::Skipped);
  EXPECT_EQ(fieldNamed(only(u), "b").category, FieldCategory::UnknownPointer);
}

TEST(Parser, MultiDeclaratorLines) {
  const auto u = parseSource(
      "struct S { double *x, *y, z; int a, b; };");
  const auto& s = only(u);
  ASSERT_EQ(s.fields.size(), 5u);
  EXPECT_EQ(fieldNamed(s, "x").pointerDepth, 1);
  EXPECT_EQ(fieldNamed(s, "y").pointerDepth, 1);
  EXPECT_EQ(fieldNamed(s, "z").pointerDepth, 0);
  EXPECT_EQ(fieldNamed(s, "z").category, FieldCategory::Scalar);
  EXPECT_EQ(fieldNamed(s, "b").category, FieldCategory::Scalar);
}

TEST(Parser, MethodsConstructorsDestructorsIgnored) {
  const auto u = parseSource(R"(
    struct S {
      S() : a(0) { a = 1; }
      ~S() { cleanup(); }
      int compute(double x) const { return static_cast<int>(x) + a; }
      void decl(int, double);
      static int counter;
      using alias = int;
      int a;
    };
  )");
  const auto& s = only(u);
  ASSERT_EQ(s.fields.size(), 1u);
  EXPECT_EQ(s.fields[0].name, "a");
}

TEST(Parser, DefaultInitializersSkipped) {
  const auto u = parseSource(
      "struct S { int a = 5; double b{1.5}; int* p = nullptr; // pcxx:size(a)\n };");
  const auto& s = only(u);
  ASSERT_EQ(s.fields.size(), 3u);
  EXPECT_EQ(fieldNamed(s, "p").category, FieldCategory::SizedPointer);
}

TEST(Parser, NamespacesQualifyNames) {
  const auto u = parseSource(
      "namespace outer { namespace inner { struct S { int a; }; } }");
  const auto& s = only(u);
  EXPECT_EQ(s.name, "S");
  EXPECT_EQ(s.qualifiedName, "outer::inner::S");
}

TEST(Parser, NestedStructsBothParsed) {
  const auto u = parseSource(
      "struct Outer { struct Inner { int x; }; Inner member; int y; };");
  ASSERT_EQ(u.structs.size(), 2u);
  // Inner is parsed first (completed first).
  EXPECT_EQ(u.structs[0].name, "Inner");
  EXPECT_EQ(u.structs[0].qualifiedName, "Outer::Inner");
  EXPECT_EQ(u.structs[1].name, "Outer");
  EXPECT_EQ(u.structs[1].fields.size(), 2u);
}

TEST(Parser, ForwardDeclarationsAndEnumsIgnored) {
  const auto u = parseSource(
      "struct Fwd;\nenum Color { Red, Green };\nstruct S { int a; };");
  EXPECT_EQ(only(u).name, "S");
}

TEST(Parser, TemplatesSkippedEntirely) {
  const auto u = parseSource(
      "template <typename T> struct Box { T value; };\nstruct S { int a; };");
  EXPECT_EQ(only(u).name, "S");
}

TEST(Parser, BaseClassesTolerated) {
  const auto u = parseSource("struct S : public Base, private Other { int a; };");
  EXPECT_EQ(only(u).fields.size(), 1u);
}

TEST(Parser, ReferenceMembersNotFields) {
  const auto u = parseSource("struct S { int& r; int a; };");
  // The reference member is skipped wholesale (skipStatement), 'a' remains.
  EXPECT_EQ(only(u).fields.size(), 1u);
  EXPECT_EQ(only(u).fields[0].name, "a");
}

TEST(Parser, DoublePointerIsUnknown) {
  const auto u = parseSource("struct S { double** m; // pcxx:size(n)\n int n; };");
  EXPECT_EQ(fieldNamed(only(u), "m").category, FieldCategory::UnknownPointer);
}

TEST(Parser, FinalClassesParsed) {
  const auto u = parseSource("struct S final { int a; };");
  EXPECT_EQ(only(u).name, "S");
  EXPECT_EQ(only(u).fields.size(), 1u);
}

TEST(Parser, NestedFinalStructSkippedGracefully) {
  // The nested-definition fast path does not recognize `final`; the subset
  // must skip the construct without crashing and still parse the rest.
  const auto u = parseSource(
      "struct Outer { struct Inner final { int x; }; int y; };");
  ASSERT_GE(u.structs.size(), 1u);
  const auto& outer = u.structs.back();
  EXPECT_EQ(outer.name, "Outer");
  bool hasY = false;
  for (const auto& f : outer.fields) {
    if (f.name == "y") hasY = true;
  }
  EXPECT_TRUE(hasY);
}

TEST(Parser, EnumClassFieldIsScalar) {
  const auto u = parseSource(
      "struct S { Color tint; int n; };");
  EXPECT_EQ(fieldNamed(only(u), "tint").category, FieldCategory::Scalar);
  EXPECT_EQ(fieldNamed(only(u), "tint").typeName, "Color");
}

TEST(Parser, MalformedSizeAnnotationThrows) {
  EXPECT_THROW(
      parseSource("struct S { double* m; // pcxx:size(n\n int n; };"),
      FormatError);
}

TEST(Parser, ErrorsCarryGccStylePositions) {
  // front-end errors lead with "file:line:col:" so editors can jump to
  // them; the file name is whatever the caller passed to parseSource.
  try {
    parseSource("struct S { int a; };\n}\n", "types.h");
    FAIL() << "unmatched '}' should throw";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("types.h:2:1: error:"),
              std::string::npos)
        << e.what();
  }
}

TEST(Parser, FieldsRecordLineAndColumn) {
  const auto u = parseSource("struct S {\n  int alpha;\n};", "s.h");
  EXPECT_EQ(u.file, "s.h");
  EXPECT_EQ(fieldNamed(only(u), "alpha").line, 2);
  EXPECT_EQ(fieldNamed(only(u), "alpha").col, 7);
}

}  // namespace
