// Unit tests for the byte codecs (util/bytes.h).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/util/bytes.h"

namespace {

using namespace pcxx;

TEST(Bytes, U64RoundTripsExtremes) {
  const std::uint64_t cases[] = {0, 1, 0xFF, 0x0123456789ABCDEFull,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    Byte buf[8];
    encodeU64(v, buf);
    EXPECT_EQ(decodeU64(buf), v);
  }
}

TEST(Bytes, U64IsLittleEndianOnDisk) {
  Byte buf[8];
  encodeU64(0x0102030405060708ull, buf);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
}

TEST(Bytes, U32RoundTripsAndLayout) {
  Byte buf[4];
  encodeU32(0xDEADBEEFu, buf);
  EXPECT_EQ(decodeU32(buf), 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[3], 0xDE);
}

TEST(ByteWriter, AppendsAllScalarKinds) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.u8(7);
  w.u32(1000);
  w.u64(1ull << 40);
  w.i64(-12345);
  w.f64(3.25);
  w.str("hello");
  EXPECT_EQ(buf.size(), 1 + 4 + 8 + 8 + 8 + 4 + 5);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 1000u);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_EQ(r.i64(), -12345);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, ThrowsFormatErrorOnUnderrun) {
  ByteBuffer buf{1, 2, 3};
  ByteReader r(buf);
  r.bytes(2);
  EXPECT_THROW(r.u32(), FormatError);
}

TEST(ByteReader, ThrowsOnTruncatedString) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.u32(100);  // claims 100 bytes follow
  buf.push_back('x');
  ByteReader r(buf);
  EXPECT_THROW(r.str(), FormatError);
}

TEST(ByteReader, SkipAdvancesAndChecksBounds) {
  ByteBuffer buf(10);
  ByteReader r(buf);
  r.skip(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_THROW(r.skip(7), FormatError);
}

TEST(Bytes, AsBytesViewsObjectRepresentation) {
  const std::uint32_t v = 0x01020304u;
  auto s = asBytes(v);
  EXPECT_EQ(s.size(), 4u);
  // Host is little-endian x86.
  EXPECT_EQ(s[0], 0x04);

  double arr[3] = {1.0, 2.0, 3.0};
  EXPECT_EQ(asBytes(arr, 3).size(), 24u);
  auto w = asWritableBytes(arr[0]);
  w[7] = 0;  // writable
  EXPECT_EQ(w.size(), 8u);
}

TEST(Bytes, F64PreservesNanAndInf) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(buf);
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_TRUE(std::isnan(r.f64()));
}

}  // namespace
