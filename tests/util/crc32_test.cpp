// Unit tests for the CRC-32 checksum.
#include <gtest/gtest.h>

#include <string>

#include "src/util/crc32.h"

namespace {

using namespace pcxx;

std::uint32_t crcOfString(const std::string& s) {
  return crc32({reinterpret_cast<const Byte*>(s.data()), s.size()});
}

TEST(Crc32, MatchesKnownVectors) {
  // Standard IEEE 802.3 CRC-32 test vectors.
  EXPECT_EQ(crcOfString(""), 0x00000000u);
  EXPECT_EQ(crcOfString("123456789"), 0xCBF43926u);
  EXPECT_EQ(crcOfString("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string s = "abcdefghijklmnopqrstuvwxyz0123456789";
  Crc32 inc;
  for (size_t i = 0; i < s.size(); i += 5) {
    const size_t n = std::min<size_t>(5, s.size() - i);
    inc.update({reinterpret_cast<const Byte*>(s.data()) + i, n});
  }
  EXPECT_EQ(inc.value(), crcOfString(s));
}

TEST(Crc32, DetectsSingleBitFlip) {
  ByteBuffer data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Byte>(i);
  const std::uint32_t clean = crc32(data);
  for (size_t pos : {size_t{0}, size_t{100}, size_t{255}}) {
    data[pos] ^= 0x01;
    EXPECT_NE(crc32(data), clean) << "flip at " << pos << " undetected";
    data[pos] ^= 0x01;
  }
}

TEST(Crc32, OrderMatters) {
  EXPECT_NE(crcOfString("ab"), crcOfString("ba"));
}

}  // namespace
