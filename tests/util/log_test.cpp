// Tests for the leveled logger and the virtual clock.
#include <gtest/gtest.h>

#include "src/runtime/clock.h"
#include "src/util/log.h"

namespace {

using namespace pcxx;

TEST(Logger, LevelGatesOutput) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.setLevel(LogLevel::Error);
  EXPECT_EQ(log.level(), LogLevel::Error);
  // Below-threshold writes are cheap no-ops (no crash, no state change).
  PCXX_LOG_DEBUG("invisible %d", 1);
  PCXX_LOG_WARN("also invisible %s", "x");
  log.setLevel(LogLevel::Off);
  PCXX_LOG_ERROR("even errors gated at Off");
  log.setLevel(before);
}

TEST(Logger, SingletonIsStable) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

TEST(VirtualClock, AdvanceAndSync) {
  rt::VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(-1.0);  // negative advances are ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.syncTo(1.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.syncTo(2.25);
  EXPECT_DOUBLE_EQ(clock.now(), 2.25);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

}  // namespace
