// Unit tests for strfmt, Table rendering, and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/util/strfmt.h"
#include "src/util/table.h"

namespace {

using namespace pcxx;

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 42, "x", 3.14159), "42-x-3.14");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, HandlesLongOutput) {
  std::string big(5000, 'a');
  EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(HumanBytes, PicksUnits) {
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(1434624), "1.4 MB");
  EXPECT_EQ(humanBytes(2ull * 1024 * 1024 * 1024), "2.0 GB");
  EXPECT_EQ(humanBytes(5632), "5.5 KB");
}

TEST(HumanSeconds, AdaptsPrecision) {
  EXPECT_EQ(humanSeconds(283.004), "283.00");
  EXPECT_EQ(humanSeconds(2.47), "2.47");
  EXPECT_EQ(humanSeconds(0.39), "0.390");
}

TEST(Table, RendersAlignedColumns) {
  Table t("Title");
  t.setHeader({"col", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("| a      | 1     |"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t("T");
  t.setHeader({"a", "b", "c"});
  t.addRow({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(Table, FootnoteAppended) {
  Table t("T");
  t.addRow({"x"});
  t.setFootnote("note here");
  EXPECT_NE(t.render().find("note here"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01StaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(Rng, RoughlyUniformMean) {
  Rng rng(2024);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
