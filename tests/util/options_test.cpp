// Unit tests for the CLI option parser.
#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/options.h"

namespace {

using namespace pcxx;

Options makeOpts() {
  Options o("prog", "test program");
  o.add("name", "default", "a string");
  o.add("count", "3", "an int");
  o.add("rate", "1.5", "a double");
  o.addFlag("verbose", "a flag");
  return o;
}

bool parseArgs(Options& o, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return o.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, DefaultsApplyWhenUnset) {
  Options o = makeOpts();
  ASSERT_TRUE(parseArgs(o, {}));
  EXPECT_EQ(o.get("name"), "default");
  EXPECT_EQ(o.getInt("count"), 3);
  EXPECT_DOUBLE_EQ(o.getDouble("rate"), 1.5);
  EXPECT_FALSE(o.getFlag("verbose"));
}

TEST(Options, SpaceAndEqualsForms) {
  Options o = makeOpts();
  ASSERT_TRUE(parseArgs(o, {"--name", "abc", "--count=7", "--verbose"}));
  EXPECT_EQ(o.get("name"), "abc");
  EXPECT_EQ(o.getInt("count"), 7);
  EXPECT_TRUE(o.getFlag("verbose"));
}

TEST(Options, ShortDashAlias) {
  Options o("prog", "t");
  o.add("o", "-", "output");
  const char* argv[] = {"prog", "-o", "file.txt"};
  ASSERT_TRUE(o.parse(3, argv));
  EXPECT_EQ(o.get("o"), "file.txt");
}

TEST(Options, BareDashIsPositional) {
  Options o = makeOpts();
  ASSERT_TRUE(parseArgs(o, {"input.h", "-"}));
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[1], "-");
}

TEST(Options, UnknownOptionThrows) {
  Options o = makeOpts();
  EXPECT_THROW(parseArgs(o, {"--bogus", "1"}), UsageError);
}

TEST(Options, MissingValueThrows) {
  Options o = makeOpts();
  EXPECT_THROW(parseArgs(o, {"--name"}), UsageError);
}

TEST(Options, BadIntegerThrows) {
  Options o = makeOpts();
  ASSERT_TRUE(parseArgs(o, {"--count", "abc"}));
  EXPECT_THROW(o.getInt("count"), UsageError);
}

TEST(Options, UndeclaredLookupThrows) {
  Options o = makeOpts();
  ASSERT_TRUE(parseArgs(o, {}));
  EXPECT_THROW(o.get("nope"), UsageError);
}

TEST(Options, HelpReturnsFalse) {
  Options o = makeOpts();
  EXPECT_FALSE(parseArgs(o, {"--help"}));
}

TEST(Options, UsageListsAllOptions) {
  Options o = makeOpts();
  const std::string u = o.usage();
  EXPECT_NE(u.find("--name"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("default: 3"), std::string::npos);
}

}  // namespace
